"""Tests for the distributed runner tier: wire protocol + socket workers.

Three layers, mirroring the implementation split:

- :mod:`repro.core.wire` in isolation — typed payload round-trips,
  framing over real socket pairs, CRC/magic/truncation rejection, and
  the HELLO version negotiation;
- :mod:`repro.core.distributed` end-to-end — loopback and ``host:port``
  bootstrap both pinned full-state bit-exact against the simulated
  runner (the deeper seeded matrix lives in ``tests/differential.py``);
- failure injection — worker crash mid-window, socket disconnect during
  a delta barrier, a stalled reply tripping ``recv_timeout``, and a
  version-mismatch handshake must each surface as a typed
  :class:`~repro.errors.PartitioningError` with no leaked socket,
  worker process, or shared-memory segment.

Fault injection works by monkeypatching the module-level
``distributed._MESSAGE_HANDLERS`` registry before the session spawns
its loopback workers: fork-started children inherit the patched
registry, so the failure fires inside a real worker process.
"""

from __future__ import annotations

import multiprocessing
import socket
import struct
import threading
import time
import zlib

import numpy as np
import pytest

from repro.core import ParallelTwoPhase, wire
from repro.core import distributed
from repro.core.distributed import (
    DistributedRunner,
    live_connections,
    live_worker_processes,
    parse_worker_spec,
    serve_worker,
)
from repro.core.runners import live_shared_segments, make_runner
from repro.errors import ConfigurationError, PartitioningError, WireError
from repro.graph.generators import chung_lu_graph
from repro.streaming import FileEdgeStream
from repro.streaming.writer import EdgeListWriter

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="needs the fork start method"
)


# ---------------------------------------------------------------------
# payload encoding
# ---------------------------------------------------------------------
class TestPayloadEncoding:
    def test_round_trips_every_type(self):
        fields = {
            "none": None,
            "yes": True,
            "no": False,
            "int": -(2**40) - 7,
            "float": 3.5,
            "text": "héllo wörld",
            "blob": b"\x00\x01\xff",
            "i64": np.arange(17, dtype=np.int64),
            "u8_2d": np.arange(24, dtype=np.uint8).reshape(4, 6),
            "flags": np.array([True, False, True]),
            "empty": np.zeros(0, dtype=np.float64),
            "nested": {"k": 3, "arr": np.array([1, 2], dtype=np.int32)},
        }
        out = wire.decode_payload(wire.encode_payload(fields))
        assert out["none"] is None
        assert out["yes"] is True and out["no"] is False
        assert out["int"] == fields["int"]
        assert out["float"] == 3.5
        assert out["text"] == fields["text"]
        assert out["blob"] == fields["blob"]
        for key in ("i64", "u8_2d", "flags", "empty"):
            np.testing.assert_array_equal(out[key], fields[key])
            assert out[key].dtype == fields[key].dtype
            assert out[key].shape == fields[key].shape
        assert out["nested"]["k"] == 3
        np.testing.assert_array_equal(
            out["nested"]["arr"], fields["nested"]["arr"]
        )

    def test_decoded_arrays_are_writable(self):
        # Kernels mutate their inputs; frombuffer views would be RO.
        out = wire.decode_payload(
            wire.encode_payload({"a": np.arange(4, dtype=np.int64)})
        )
        out["a"][0] = 99
        assert out["a"][0] == 99

    def test_none_payload_is_empty_mapping(self):
        assert wire.decode_payload(wire.encode_payload(None)) == {}

    def test_unencodable_value_raises_wire_error(self):
        with pytest.raises(WireError, match="no wire encoding"):
            wire.encode_payload({"bad": object()})

    def test_truncated_payload_raises_wire_error(self):
        data = wire.encode_payload({"a": np.arange(8, dtype=np.int64)})
        with pytest.raises(WireError, match="truncated"):
            wire.decode_payload(data[:-5])

    def test_array_length_mismatch_raises(self):
        data = bytearray(
            wire.encode_payload({"a": np.arange(4, dtype=np.int64)})
        )
        # Shrink the declared element count but keep the byte blob.
        idx = data.index(struct.pack("!q", 4))
        data[idx : idx + 8] = struct.pack("!q", 3)
        with pytest.raises(WireError, match="length mismatch"):
            wire.decode_payload(bytes(data))


# ---------------------------------------------------------------------
# framing over a socket
# ---------------------------------------------------------------------
def _pair():
    a, b = socket.socketpair()
    return wire.Connection(a, label="left"), wire.Connection(b, label="right")


class TestFraming:
    def test_frame_round_trip(self):
        left, right = _pair()
        try:
            left.send(wire.MSG_WINDOW, {"start": 5, "stop": 9})
            msg_type, fields = right.recv()
            assert msg_type == wire.MSG_WINDOW
            assert fields == {"start": 5, "stop": 9}
            assert left.bytes_sent == right.bytes_received > 0
        finally:
            left.close()
            right.close()

    def test_crc_corruption_rejected(self):
        left, right = _pair()
        try:
            payload = wire.encode_payload({"x": 1})
            header = struct.pack(
                "!4sBBHII",
                wire.MAGIC, wire.MSG_OK, 0, 0,
                len(payload), zlib.crc32(payload),
            )
            corrupted = bytearray(payload)
            corrupted[0] ^= 0xFF
            left.sock.sendall(header + bytes(corrupted))
            with pytest.raises(WireError, match="CRC mismatch"):
                right.recv()
        finally:
            left.close()
            right.close()

    def test_bad_magic_rejected(self):
        left, right = _pair()
        try:
            left.sock.sendall(
                struct.pack("!4sBBHII", b"XXXX", wire.MSG_OK, 0, 0, 0, 0)
            )
            with pytest.raises(WireError, match="magic"):
                right.recv()
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = _pair()
        try:
            left.sock.sendall(b"2PSW\x02")  # header cut short
            left.close()
            with pytest.raises(WireError, match="mid-frame"):
                right.recv()
        finally:
            right.close()

    def test_recv_timeout_is_wire_error(self):
        left, right = _pair()
        try:
            right.settimeout(0.05)
            with pytest.raises(WireError, match="timed out"):
                right.recv()
        finally:
            left.close()
            right.close()

    def test_close_is_idempotent(self):
        left, right = _pair()
        left.close()
        left.close()
        right.close()


# ---------------------------------------------------------------------
# handshake / version negotiation
# ---------------------------------------------------------------------
class TestHandshake:
    def _run(self, server_version=None, client_version=None):
        left, right = _pair()
        server_exc: list = []

        def server():
            try:
                wire.handshake_server(right, version=server_version)
            except WireError as exc:
                server_exc.append(exc)

        thread = threading.Thread(target=server)
        thread.start()
        try:
            return wire.handshake_client(left, version=client_version)
        finally:
            thread.join(timeout=5)
            left.close()
            right.close()
            self.server_exc = server_exc

    def test_matching_versions_agree(self):
        assert self._run() == wire.WIRE_VERSION
        assert not self.server_exc

    def test_version_mismatch_raises_both_sides(self):
        with pytest.raises(WireError, match="version mismatch"):
            self._run(server_version=wire.WIRE_VERSION + 1)
        assert self.server_exc and "mismatch" in str(self.server_exc[0])

    def test_non_hello_opener_rejected(self):
        left, right = _pair()

        def server():
            try:
                wire.handshake_server(right)
            except WireError:
                pass

        thread = threading.Thread(target=server)
        thread.start()
        try:
            left.send(wire.MSG_WINDOW, {"start": 0, "stop": 0})
            with pytest.raises(WireError, match="rejected"):
                msg_type, fields = left.recv()
                if msg_type == wire.MSG_ERROR:
                    raise WireError(f"rejected: {fields['message']}")
        finally:
            thread.join(timeout=5)
            left.close()
            right.close()


class TestWorkerSpec:
    def test_parses_host_port(self):
        assert parse_worker_spec("node-3:9001") == ("node-3", 9001)

    @pytest.mark.parametrize(
        "spec", ["nohost", ":8000", "h:", "h:abc", "h:0", "h:70000"]
    )
    def test_rejects_malformed(self, spec):
        with pytest.raises(ConfigurationError):
            parse_worker_spec(spec)


# ---------------------------------------------------------------------
# end-to-end equivalence
# ---------------------------------------------------------------------
def _graph():
    return chung_lu_graph(120, 900, gamma=2.2, seed=5)


def _partition(runner, stream, **kwargs):
    return ParallelTwoPhase(
        n_workers=kwargs.pop("n_workers", 2),
        sync_interval=37,
        runner=runner,
        parallel_phase1=True,
        **kwargs,
    ).partition(stream, 5, chunk_size=64)


def _assert_same(a, b):
    np.testing.assert_array_equal(a.assignments, b.assignments)
    np.testing.assert_array_equal(
        np.asarray(a.state.replicas), np.asarray(b.state.replicas)
    )
    np.testing.assert_array_equal(a.state.sizes, b.state.sizes)
    assert a.cost == b.cost


def _assert_clean():
    assert live_connections() == frozenset()
    assert live_worker_processes() == frozenset()
    assert sorted(live_shared_segments()) == []


@needs_fork
class TestLoopbackEquivalence:
    def test_matches_simulated_runner(self):
        graph = _graph()
        dist = _partition("distributed", graph)
        sim = _partition("simulated", graph)
        _assert_same(dist, sim)
        _assert_clean()

    def test_single_worker_matches_simulated(self):
        graph = _graph()
        _assert_same(
            _partition("distributed", graph, n_workers=1),
            _partition("simulated", graph, n_workers=1),
        )
        _assert_clean()

    def test_packed_state_and_wire_stats(self):
        graph = _graph()
        dist = _partition("distributed", graph, packed_state=True)
        sim = _partition("simulated", graph, packed_state=True)
        _assert_same(dist, sim)
        stats = dist.extras["wire"]
        assert stats["bytes_sent"] > 0 and stats["bytes_received"] > 0
        assert 0 < stats["barrier_delta_bytes"]
        assert 0 < stats["barrier_plane_bytes"]
        assert stats["barrier_plane_bytes"] < stats["barrier_full_bytes"]
        _assert_clean()


def _serve_in_thread(version=None):
    """Run one-session ``serve_worker`` on a thread; return its address."""
    box: dict = {}
    ready = threading.Event()

    def note(host, port):
        box["addr"] = f"{host}:{port}"
        ready.set()

    thread = threading.Thread(
        target=serve_worker,
        kwargs={"max_sessions": 1, "version": version, "ready": note},
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10), "worker server never bound"
    return box["addr"], thread


class TestHostPortWorkers:
    def test_matches_simulated_over_file_stream(self, tmp_path):
        graph = _graph()
        path = tmp_path / "edges.bin"
        with EdgeListWriter(str(path)) as writer:
            writer.write_chunk(graph.edges)

        def stream():
            return FileEdgeStream(str(path), n_vertices=graph.n_vertices)

        addr_a, thread_a = _serve_in_thread()
        addr_b, thread_b = _serve_in_thread()
        dist = _partition(
            DistributedRunner(workers=[addr_a, addr_b]), stream()
        )
        thread_a.join(timeout=10)
        thread_b.join(timeout=10)
        assert not thread_a.is_alive() and not thread_b.is_alive()
        _assert_same(dist, _partition("simulated", stream()))
        _assert_clean()

    def test_in_memory_stream_rejected(self):
        with pytest.raises(ConfigurationError, match="file-backed"):
            _partition(
                DistributedRunner(workers=["127.0.0.1:9", "127.0.0.1:10"]),
                _graph(),
            )
        _assert_clean()

    def test_worker_count_mismatch_rejected(self, tmp_path):
        graph = _graph()
        path = tmp_path / "edges.bin"
        with EdgeListWriter(str(path)) as writer:
            writer.write_chunk(graph.edges)
        with pytest.raises(ConfigurationError, match="must match"):
            _partition(
                DistributedRunner(workers=["127.0.0.1:9"]),
                FileEdgeStream(str(path), n_vertices=graph.n_vertices),
                n_workers=3,
            )
        _assert_clean()

    def test_unreachable_worker_is_typed_error(self, tmp_path):
        graph = _graph()
        path = tmp_path / "edges.bin"
        with EdgeListWriter(str(path)) as writer:
            writer.write_chunk(graph.edges)
        # A listener that never accepts protocol traffic is not needed:
        # nothing listens on the reserved port at all.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(PartitioningError, match="could not connect"):
            _partition(
                DistributedRunner(
                    workers=[f"127.0.0.1:{port}", f"127.0.0.1:{port}"],
                    connect_timeout=0.5,
                ),
                FileEdgeStream(str(path), n_vertices=graph.n_vertices),
            )
        _assert_clean()


class TestRunnerConfig:
    def test_make_runner_resolves_distributed(self):
        runner = make_runner("distributed", task_timeout=12.0)
        assert isinstance(runner, DistributedRunner)
        assert runner.recv_timeout == 12.0

    def test_unknown_runner_lists_distributed(self):
        with pytest.raises(ConfigurationError, match="distributed"):
            make_runner("threads")

    def test_rejects_nonpositive_timeouts(self):
        with pytest.raises(ConfigurationError):
            DistributedRunner(recv_timeout=0)
        with pytest.raises(ConfigurationError):
            DistributedRunner(connect_timeout=-1)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ConfigurationError):
            DistributedRunner(start_method="no-such-method")


# ---------------------------------------------------------------------
# failure injection (ISSUE satellite: typed errors + clean teardown)
# ---------------------------------------------------------------------
def _crash_handler(ctx, payload):
    import os

    os._exit(1)  # hard worker death: SIGKILL-like, no cleanup


def _disconnect_handler(ctx, payload):
    # SystemExit is not caught by the handler-error guard (it only
    # catches Exception), so the worker leaves its serve loop through
    # the finally-close: an orderly FIN mid-protocol, not a crash.
    raise SystemExit(0)


def _stall_handler(ctx, payload):
    time.sleep(1.5)
    return wire.MSG_OK, None


@needs_fork
class TestFailureInjection:
    """Each injected fault must surface as PartitioningError and leave
    no socket, worker process, or shared-memory segment behind."""

    def _run_with_fault(self, monkeypatch, msg_type, handler, **runner_kw):
        monkeypatch.setitem(
            distributed._MESSAGE_HANDLERS, msg_type, handler
        )
        runner = DistributedRunner(start_method="fork", **runner_kw)
        with pytest.raises(PartitioningError) as excinfo:
            _partition(runner, _graph())
        return excinfo

    def test_worker_crash_mid_window(self, monkeypatch):
        excinfo = self._run_with_fault(
            monkeypatch, wire.MSG_WINDOW, _crash_handler
        )
        assert "died or stalled" in str(excinfo.value)
        _assert_clean()
        assert not multiprocessing.active_children()

    def test_disconnect_during_delta_barrier(self, monkeypatch):
        excinfo = self._run_with_fault(
            monkeypatch, wire.MSG_BARRIER, _disconnect_handler
        )
        assert "barrier" in str(excinfo.value)
        _assert_clean()
        assert not multiprocessing.active_children()

    def test_recv_timeout_on_stalled_worker(self, monkeypatch):
        excinfo = self._run_with_fault(
            monkeypatch, wire.MSG_WINDOW, _stall_handler,
            recv_timeout=0.2,
        )
        assert "died or stalled" in str(excinfo.value)
        _assert_clean()
        assert not multiprocessing.active_children()

    def test_worker_exception_reported_with_step(self, monkeypatch):
        def boom(ctx, payload):
            raise ValueError("injected kernel failure")

        monkeypatch.setitem(
            distributed._MESSAGE_HANDLERS, wire.MSG_WINDOW, boom
        )
        with pytest.raises(PartitioningError, match="injected kernel"):
            _partition(
                DistributedRunner(start_method="fork"), _graph()
            )
        _assert_clean()
        assert not multiprocessing.active_children()


class TestVersionMismatchHandshake:
    def test_mismatched_worker_is_typed_error(self, tmp_path):
        graph = _graph()
        path = tmp_path / "edges.bin"
        with EdgeListWriter(str(path)) as writer:
            writer.write_chunk(graph.edges)
        addr_a, thread_a = _serve_in_thread(version=wire.WIRE_VERSION + 1)
        addr_b, thread_b = _serve_in_thread(version=wire.WIRE_VERSION + 1)
        with pytest.raises(PartitioningError, match="handshake"):
            _partition(
                DistributedRunner(workers=[addr_a, addr_b]),
                FileEdgeStream(str(path), n_vertices=graph.n_vertices),
            )
        thread_a.join(timeout=10)
        thread_b.join(timeout=10)
        _assert_clean()
