"""Online auto-tuner tests (ISSUE 8).

The contract under test (:mod:`repro.tuning`):

- decisions are deterministic — pure functions of the probe data, the
  declared stream shape and the seed, never of wall-clock;
- every tuned knob is semantics-free, so ``tune="auto"`` is bit-exact
  with an untuned run (the differential harness sweeps this too);
- pinned knobs are never overridden, and ``sync_interval`` is only
  touched in the staleness-free regime;
- the decision is recorded in ``result.artifacts.tuning`` and the
  partitioner's own knobs are restored after the run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HDRF
from repro.core import ParallelTwoPhase, TwoPhasePartitioner
from repro.errors import ConfigurationError, PartitioningError
from repro.streaming import InMemoryEdgeStream
from repro.tuning import (
    PROBE_SPAN_EDGES,
    TuningDecision,
    probe_features,
    tune_run,
)


def _identical(a, b):
    np.testing.assert_array_equal(a.assignments, b.assignments)
    np.testing.assert_array_equal(a.state.sizes, b.state.sizes)
    np.testing.assert_array_equal(a.state.replicas, b.state.replicas)
    assert a.cost == b.cost


class TestProbe:
    def test_features_deterministic(self, powerlaw_graph):
        a = probe_features(InMemoryEdgeStream(powerlaw_graph), 8)
        b = probe_features(InMemoryEdgeStream(powerlaw_graph), 8)
        assert a == b

    def test_probe_is_bounded(self, powerlaw_graph):
        feats = probe_features(InMemoryEdgeStream(powerlaw_graph), 8)
        assert 0 < feats["probe_edges"] <= PROBE_SPAN_EDGES
        assert 0.0 <= feats["dup_rate"] < 1.0
        assert 0.0 < feats["hub_rate"] <= 1.0

    def test_decision_deterministic(self, powerlaw_graph):
        p = TwoPhasePartitioner()
        a = tune_run(p, InMemoryEdgeStream(powerlaw_graph), 8, None)
        b = tune_run(p, InMemoryEdgeStream(powerlaw_graph), 8, None)
        assert isinstance(a, TuningDecision)
        assert a == b

    def test_summary_is_json_friendly(self, powerlaw_graph):
        import json

        d = tune_run(
            TwoPhasePartitioner(), InMemoryEdgeStream(powerlaw_graph), 8, None
        )
        json.dumps(d.summary())  # must not raise


class TestKnobGating:
    def test_pinned_backend_is_kept(self, powerlaw_graph):
        p = TwoPhasePartitioner(backend="python")
        d = tune_run(p, InMemoryEdgeStream(powerlaw_graph), 8, None)
        assert d.backend is None
        result = p.partition(powerlaw_graph, 8, tune="auto")
        assert result.extras["backend"] == "python"

    def test_pinned_chunk_size_is_kept(self, powerlaw_graph):
        p = TwoPhasePartitioner()
        d = tune_run(p, InMemoryEdgeStream(powerlaw_graph), 8, 12345)
        assert d.chunk_size is None

    def test_auto_chunk_request_is_tuned(self, powerlaw_graph):
        p = TwoPhasePartitioner()
        for request in (None, "auto"):
            d = tune_run(p, InMemoryEdgeStream(powerlaw_graph), 8, request)
            assert isinstance(d.chunk_size, int) and d.chunk_size > 0

    def test_sync_interval_only_when_semantics_free(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        # Staleness possible: multi-worker, non-serial runner -> untouched.
        stale = ParallelTwoPhase(n_workers=3, runner="simulated")
        assert tune_run(stale, stream, 8, None).sync_interval is None
        # Lone worker or serial runner: never stale -> tunable.
        lone = ParallelTwoPhase(n_workers=1, runner="simulated")
        d = tune_run(lone, stream, 8, None)
        assert d.sync_interval is not None
        assert d.sync_interval >= lone.sync_interval
        serial = ParallelTwoPhase(n_workers=4, runner="serial")
        assert tune_run(serial, stream, 8, None).sync_interval is not None

    def test_sequential_partitioner_has_no_sync_knob(self, powerlaw_graph):
        d = tune_run(
            TwoPhasePartitioner(), InMemoryEdgeStream(powerlaw_graph), 8, None
        )
        assert d.sync_interval is None


class TestTunedRuns:
    @pytest.mark.parametrize("mode", ["linear", "hdrf"])
    def test_two_phase_bit_exact(self, powerlaw_graph, mode):
        untuned = TwoPhasePartitioner(mode=mode).partition(powerlaw_graph, 8)
        tuned = TwoPhasePartitioner(mode=mode).partition(
            powerlaw_graph, 8, tune="auto"
        )
        _identical(untuned, tuned)

    @pytest.mark.parametrize(
        "n_workers,runner", [(1, "serial"), (1, "simulated"), (3, "simulated")]
    )
    def test_parallel_bit_exact(self, powerlaw_graph, n_workers, runner):
        untuned = ParallelTwoPhase(
            n_workers=n_workers, runner=runner
        ).partition(powerlaw_graph, 8)
        tuned = ParallelTwoPhase(
            n_workers=n_workers, runner=runner, tune="auto"
        ).partition(powerlaw_graph, 8)
        _identical(untuned, tuned)

    def test_hdrf_baseline_bit_exact(self, powerlaw_graph):
        untuned = HDRF().partition(powerlaw_graph, 8)
        tuned = HDRF().partition(powerlaw_graph, 8, tune="auto")
        _identical(untuned, tuned)

    def test_decision_recorded_in_artifacts(self, powerlaw_graph):
        result = TwoPhasePartitioner().partition(
            powerlaw_graph, 8, tune="auto"
        )
        d = result.artifacts.tuning
        assert isinstance(d, TuningDecision)
        assert result.extras["backend"] == (d.backend or "numpy")

    def test_untuned_runs_carry_no_artifacts(self, powerlaw_graph):
        result = TwoPhasePartitioner().partition(powerlaw_graph, 8)
        assert result.artifacts is None

    def test_keep_state_artifacts_gain_tuning(self, powerlaw_graph):
        result = TwoPhasePartitioner(keep_state=True).partition(
            powerlaw_graph, 8, tune="auto"
        )
        assert result.artifacts.clustering is not None
        assert result.artifacts.tuning is not None

    def test_knobs_restored_after_the_run(self, powerlaw_graph):
        p = ParallelTwoPhase(n_workers=1, runner="serial", sync_interval=777)
        p.partition(powerlaw_graph, 8, tune="auto")
        assert p.backend is None
        assert p.sync_interval == 777

    def test_instance_level_tune_applies_every_run(self, powerlaw_graph):
        p = TwoPhasePartitioner(tune="auto")
        a = p.partition(powerlaw_graph, 8)
        b = p.partition(powerlaw_graph, 8)
        assert a.artifacts.tuning == b.artifacts.tuning

    def test_repeated_tuned_runs_identical(self, powerlaw_graph):
        p = TwoPhasePartitioner()
        a = p.partition(powerlaw_graph, 8, tune="auto")
        b = p.partition(powerlaw_graph, 8, tune="auto")
        _identical(a, b)
        assert a.artifacts.tuning == b.artifacts.tuning


class TestValidation:
    def test_partition_rejects_unknown_tune(self, powerlaw_graph):
        with pytest.raises(PartitioningError, match="tune"):
            TwoPhasePartitioner().partition(
                powerlaw_graph, 8, tune="aggressive"
            )

    @pytest.mark.parametrize("cls", [TwoPhasePartitioner, ParallelTwoPhase])
    def test_ctor_rejects_unknown_tune(self, cls):
        with pytest.raises(ConfigurationError, match="tune"):
            cls(tune="fast")


class TestCli:
    def test_tune_flag(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.graph.formats import write_binary_edge_list
        from repro.graph.generators import rmat_graph

        graph = rmat_graph(7, edge_factor=4, seed=1)
        path = tmp_path / "edges.bin"
        write_binary_edge_list(graph, str(path))
        rc = cli_main(
            ["partition", "--input", str(path), "--k", "4", "--tune", "auto"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "auto-tuned" in out
