"""Tests for the partition writer/loader and the GNN workload."""

import json

import numpy as np
import pytest

from repro.baselines import DBH
from repro.core import TwoPhasePartitioner
from repro.errors import FormatError, PartitioningError, ProcessingError
from repro.processing import GnnEpoch, PartitionedGraph, PregelEngine
from repro.processing.gnn import reference_gnn_epoch
from repro.streaming import PartitionWriter, load_partitioned, write_partitioned


class TestPartitionWriter:
    def test_round_trip(self, tmp_path, community_graph):
        result = DBH().partition(community_graph, 4)
        manifest = write_partitioned(
            tmp_path, community_graph.edges, result.assignments, 4,
            community_graph.n_vertices,
        )
        graphs, loaded = load_partitioned(tmp_path)
        assert loaded["k"] == 4
        assert sum(g.n_edges for g in graphs) == community_graph.n_edges
        assert manifest["edge_counts"] == loaded["edge_counts"]

    def test_partition_contents_match(self, tmp_path, toy_graph):
        result = TwoPhasePartitioner().partition(toy_graph, 2)
        write_partitioned(tmp_path, toy_graph.edges, result.assignments, 2)
        graphs, _ = load_partitioned(tmp_path)
        for p in range(2):
            expected = toy_graph.edges[result.assignments == p]
            assert np.array_equal(graphs[p].edges, expected)

    def test_streaming_write_path(self, tmp_path, toy_graph):
        with PartitionWriter(tmp_path, 2, buffer_edges=3) as writer:
            for (u, v) in toy_graph.edges.tolist():
                writer.write(u, v, (u + v) % 2)
        graphs, manifest = load_partitioned(tmp_path)
        assert sum(manifest["edge_counts"]) == toy_graph.n_edges
        assert sum(g.n_edges for g in graphs) == toy_graph.n_edges

    def test_write_rejects_bad_partition(self, tmp_path):
        with PartitionWriter(tmp_path, 2) as writer:
            with pytest.raises(PartitioningError):
                writer.write(0, 1, 5)

    def test_rejects_length_mismatch(self, tmp_path, toy_graph):
        with PartitionWriter(tmp_path, 2) as writer:
            with pytest.raises(PartitioningError):
                writer.write_result(toy_graph.edges, np.zeros(3))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FormatError):
            load_partitioned(tmp_path)

    def test_corrupt_manifest_format(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": "x"}))
        with pytest.raises(FormatError):
            load_partitioned(tmp_path)

    def test_count_mismatch_detected(self, tmp_path, toy_graph):
        result = DBH().partition(toy_graph, 2)
        write_partitioned(tmp_path, toy_graph.edges, result.assignments, 2)
        # Truncate one partition file behind the manifest's back.
        victim = tmp_path / "partition_00000.bin"
        data = victim.read_bytes()
        if len(data) >= 8:
            victim.write_bytes(data[:-8])
            with pytest.raises(FormatError):
                load_partitioned(tmp_path)

    def test_close_idempotent(self, tmp_path):
        writer = PartitionWriter(tmp_path, 2)
        writer.close()
        writer.close()

    def test_raised_body_writes_no_manifest(self, tmp_path):
        """Regression: a with-body that raises must not earn a manifest.

        Pre-fix, ``__exit__`` called ``close()`` unconditionally, stamping
        a complete-looking manifest over partition files missing whatever
        the body never wrote, and ``load_partitioned`` would then serve
        the truncated data without complaint.
        """
        with pytest.raises(RuntimeError):
            with PartitionWriter(tmp_path, 2, buffer_edges=4) as writer:
                writer.write(0, 1, 0)
                writer.write(1, 2, 1)
                raise RuntimeError("simulated mid-write crash")
        assert not (tmp_path / "manifest.json").exists()
        with pytest.raises(FormatError):
            load_partitioned(tmp_path)

    def test_abort_skips_manifest_and_sticks(self, tmp_path):
        writer = PartitionWriter(tmp_path, 2)
        writer.write(0, 1, 0)
        writer.abort()
        writer.abort()  # idempotent
        # An aborted writer stays closed: close() must not resurrect it
        # and bless the partial files with a manifest after the fact.
        writer.close()
        assert not (tmp_path / "manifest.json").exists()

    def test_clean_body_still_writes_manifest(self, tmp_path, toy_graph):
        with PartitionWriter(tmp_path, 2) as writer:
            for u, v in toy_graph.edges.tolist():
                writer.write(u, v, (u + v) % 2)
        graphs, manifest = load_partitioned(tmp_path)
        assert sum(manifest["edge_counts"]) == toy_graph.n_edges


class TestGnnWorkload:
    def test_matches_dense_reference(self, community_graph):
        result = DBH().partition(community_graph, 4)
        pg = PartitionedGraph(
            community_graph.edges, result.assignments, 4,
            community_graph.n_vertices,
        )
        values, report = PregelEngine().run(pg, GnnEpoch(layers=4), 10)
        ref = reference_gnn_epoch(
            community_graph.edges, community_graph.n_vertices, 4
        )
        assert np.allclose(values, ref)
        assert report.supersteps == 4
        assert report.converged

    def test_partitioning_invariant(self, community_graph):
        a = DBH().partition(community_graph, 2)
        b = TwoPhasePartitioner().partition(community_graph, 8)
        pga = PartitionedGraph(
            community_graph.edges, a.assignments, 2, community_graph.n_vertices
        )
        pgb = PartitionedGraph(
            community_graph.edges, b.assignments, 8, community_graph.n_vertices
        )
        va, _ = PregelEngine().run(pga, GnnEpoch(layers=2), 5)
        vb, _ = PregelEngine().run(pgb, GnnEpoch(layers=2), 5)
        assert np.allclose(va, vb)

    def test_feature_bytes_drive_comm_cost(self, community_graph):
        result = DBH().partition(community_graph, 4)
        pg = PartitionedGraph(
            community_graph.edges, result.assignments, 4,
            community_graph.n_vertices,
        )
        _, light = PregelEngine().run(pg, GnnEpoch(layers=2, feature_bytes=64), 5)
        _, heavy = PregelEngine().run(
            pg, GnnEpoch(layers=2, feature_bytes=4096), 5
        )
        assert heavy.comm_seconds > 10 * light.comm_seconds

    def test_rejects_bad_params(self):
        with pytest.raises(ProcessingError):
            GnnEpoch(layers=0)
        with pytest.raises(ProcessingError):
            GnnEpoch(feature_bytes=0)

    def test_lower_rf_cuts_gnn_cost(self, community_graph):
        """The GNN motivation: quality partitioning pays off at heavy
        feature traffic."""
        good = TwoPhasePartitioner().partition(community_graph, 8)
        from repro.baselines import RandomHash

        bad = RandomHash().partition(community_graph, 8)
        engine = PregelEngine()
        costs = {}
        for name, res in (("good", good), ("bad", bad)):
            pg = PartitionedGraph(
                community_graph.edges, res.assignments, 8,
                community_graph.n_vertices,
            )
            _, report = engine.run(pg, GnnEpoch(layers=3), 5)
            costs[name] = report.comm_seconds
        assert costs["good"] < costs["bad"]
