"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import (
    chung_lu_graph,
    planted_partition_graph,
    ring_of_cliques,
    rmat_graph,
    social_community_graph,
    star_graph,
    two_cluster_toy_graph,
)


class TestChungLu:
    def test_exact_edge_count(self):
        g = chung_lu_graph(100, 500, seed=1)
        assert g.n_edges == 500
        assert g.n_vertices == 100

    def test_deterministic(self):
        a = chung_lu_graph(100, 500, seed=1)
        b = chung_lu_graph(100, 500, seed=1)
        assert np.array_equal(a.edges, b.edges)

    def test_seed_changes_output(self):
        a = chung_lu_graph(100, 500, seed=1)
        b = chung_lu_graph(100, 500, seed=2)
        assert not np.array_equal(a.edges, b.edges)

    def test_no_self_loops(self):
        g = chung_lu_graph(50, 400, seed=3)
        assert (g.edges[:, 0] != g.edges[:, 1]).all()

    def test_heavy_tail(self):
        g = chung_lu_graph(2000, 20000, gamma=2.0, seed=4)
        deg = g.degrees
        # Power-law: the max degree far exceeds the mean.
        assert deg.max() > 10 * deg.mean()

    def test_lower_gamma_is_more_skewed(self):
        skewed = chung_lu_graph(2000, 20000, gamma=1.8, seed=5)
        flat = chung_lu_graph(2000, 20000, gamma=3.0, seed=5)
        assert skewed.degrees.max() > flat.degrees.max()

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            chung_lu_graph(10, 10, gamma=1.0)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ConfigurationError):
            chung_lu_graph(0, 10)
        with pytest.raises(ConfigurationError):
            chung_lu_graph(10, 0)


class TestRmat:
    def test_sizes(self):
        g = rmat_graph(8, edge_factor=4, seed=1)
        assert g.n_vertices == 256
        # self-loops are dropped, so slightly fewer than 4 * 256
        assert 0.8 * 1024 <= g.n_edges <= 1024

    def test_deterministic(self):
        a = rmat_graph(6, seed=2)
        b = rmat_graph(6, seed=2)
        assert np.array_equal(a.edges, b.edges)

    def test_skewed_degrees(self):
        g = rmat_graph(10, edge_factor=8, seed=3)
        assert g.degrees.max() > 5 * g.degrees.mean()

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            rmat_graph(0)
        with pytest.raises(ConfigurationError):
            rmat_graph(30)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            rmat_graph(5, a=0.9, b=0.2, c=0.2)


class TestPlantedPartition:
    def test_sizes(self):
        g = planted_partition_graph(10, 20, seed=1)
        assert g.n_vertices == 200

    def test_intra_edges_dominate(self):
        g = planted_partition_graph(10, 20, p_intra=0.5, p_inter=0.001, seed=2)
        comm = np.arange(g.n_vertices) // 20
        intra = (comm[g.edges[:, 0]] == comm[g.edges[:, 1]]).mean()
        assert intra > 0.8

    def test_no_self_loops(self):
        g = planted_partition_graph(5, 10, seed=3)
        assert (g.edges[:, 0] != g.edges[:, 1]).all()

    def test_deterministic(self):
        a = planted_partition_graph(5, 10, seed=4)
        b = planted_partition_graph(5, 10, seed=4)
        assert np.array_equal(a.edges, b.edges)

    def test_zero_inter_probability(self):
        g = planted_partition_graph(4, 10, p_intra=0.5, p_inter=0.0, seed=5)
        comm = np.arange(g.n_vertices) // 10
        assert (comm[g.edges[:, 0]] == comm[g.edges[:, 1]]).all()

    def test_rejects_inverted_probabilities(self):
        with pytest.raises(ConfigurationError):
            planted_partition_graph(4, 10, p_intra=0.1, p_inter=0.2)


class TestSocialCommunity:
    def test_sizes_near_target(self):
        g = social_community_graph(500, 5000, seed=1)
        assert g.n_vertices == 500
        assert 0.7 * 5000 <= g.n_edges <= 1.3 * 5000

    def test_pure_hub_layer(self):
        g = social_community_graph(200, 2000, community_fraction=0.0, seed=2)
        assert g.n_edges == 2000

    def test_pure_community_layer(self):
        g = social_community_graph(200, 2000, community_fraction=1.0, seed=3)
        comm = np.arange(200) // 32
        intra = (comm[g.edges[:, 0]] == comm[g.edges[:, 1]]).mean()
        assert intra > 0.95

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            social_community_graph(10, 10, community_fraction=1.5)

    def test_deterministic(self):
        a = social_community_graph(100, 1000, seed=7)
        b = social_community_graph(100, 1000, seed=7)
        assert np.array_equal(a.edges, b.edges)


class TestRingOfCliques:
    def test_structure(self):
        g = ring_of_cliques(4, 5, seed=1)
        assert g.n_vertices == 20
        # 4 cliques of C(5,2)=10 edges plus 4 bridges.
        assert g.n_edges == 44

    def test_minimum_clique_size(self):
        with pytest.raises(ConfigurationError):
            ring_of_cliques(3, 1)

    def test_single_clique_has_no_bridges(self):
        g = ring_of_cliques(1, 4)
        assert g.n_vertices == 4
        assert g.n_edges == 6  # C(4,2), no self-bridge


class TestToyGraphs:
    def test_star(self):
        g = star_graph(5)
        assert g.n_vertices == 6
        assert g.n_edges == 5
        assert g.degrees[0] == 5

    def test_star_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            star_graph(0)

    def test_two_cluster_toy(self):
        g = two_cluster_toy_graph()
        assert g.n_vertices == 8
        assert g.n_edges == 14  # 2 * C(4,2) + 2 bridges
        # Bridges connect the two halves.
        lo = g.edges.min(axis=1)
        hi = g.edges.max(axis=1)
        bridges = ((lo < 4) & (hi >= 4)).sum()
        assert bridges == 2
