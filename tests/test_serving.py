"""Tests for the partition-serving layer (store + lookup service)."""

import json

import numpy as np
import pytest

from repro.core import TwoPhasePartitioner
from repro.errors import FormatError, PartitioningError
from repro.serving import STORE_VERSION, LookupService, PartitionStore
from repro.serving.store import MANIFEST_NAME, edge_keys
from tests.differential import assert_store_round_trip


@pytest.fixture(scope="module")
def served():
    """A partitioned power-law graph (module-scoped: partition once)."""
    from repro.graph.generators import chung_lu_graph

    graph = chung_lu_graph(400, 4000, gamma=2.1, seed=11)
    result = TwoPhasePartitioner(keep_state=True).partition(graph, 9)
    return graph, result


@pytest.fixture()
def store_dir(served, tmp_path):
    graph, result = served
    path = tmp_path / "store"
    PartitionStore.write(path, result, graph.edges)
    return path


class TestPartitionStore:
    def test_round_trip_property(self, served, tmp_path):
        """Write → mmap-reopen → every lookup bit-equal to the result."""
        graph, result = served
        assert_store_round_trip(result, graph.edges, "test round-trip")

    def test_round_trip_off_byte_boundary_k(self, tmp_path):
        """k values off byte boundaries exercise the packed tail bits."""
        from repro.graph.generators import two_cluster_toy_graph

        graph = two_cluster_toy_graph()
        for k in (9, 13, 16, 17):
            result = TwoPhasePartitioner(keep_state=True).partition(
                graph, k
            )
            assert_store_round_trip(
                result, graph.edges, f"round-trip k={k}"
            )

    def test_open_is_memory_mapped(self, store_dir):
        store = PartitionStore.open(store_dir)
        assert isinstance(store.assignments, np.memmap)
        assert isinstance(store.edge_keys, np.memmap)
        assert isinstance(store.replicas.packed, np.memmap)

    def test_packed_and_dense_stores_byte_identical(self, tmp_path):
        from repro.graph.generators import two_cluster_toy_graph

        graph = two_cluster_toy_graph()
        dense = TwoPhasePartitioner(keep_state=True).partition(graph, 11)
        packed = TwoPhasePartitioner(
            keep_state=True, packed_state=True
        ).partition(graph, 11)
        PartitionStore.write(tmp_path / "dense", dense, graph.edges)
        PartitionStore.write(tmp_path / "packed", packed, graph.edges)
        for name in (
            "assignments.bin", "edge_keys.bin", "edge_parts.bin",
            "replicas.bin", "degrees.bin", "sizes.bin",
        ):
            assert (tmp_path / "dense" / name).read_bytes() == (
                tmp_path / "packed" / name
            ).read_bytes(), name

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FormatError):
            PartitionStore.open(tmp_path)

    def test_foreign_format_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "x"}))
        with pytest.raises(FormatError, match="not a partition store"):
            PartitionStore.open(tmp_path)

    def test_future_version_rejected(self, store_dir):
        manifest = json.loads((store_dir / MANIFEST_NAME).read_text())
        manifest["version"] = STORE_VERSION + 1
        (store_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(FormatError, match="unsupported store version"):
            PartitionStore.open(store_dir)

    def test_truncated_file_rejected_at_open(self, store_dir):
        victim = store_dir / "assignments.bin"
        victim.write_bytes(victim.read_bytes()[:-4])
        with pytest.raises(FormatError, match="assignments.bin"):
            PartitionStore.open(store_dir)

    def test_missing_array_file_rejected(self, store_dir):
        (store_dir / "sizes.bin").unlink()
        with pytest.raises(FormatError, match="sizes.bin"):
            PartitionStore.open(store_dir)

    def test_corruption_caught_by_verify(self, store_dir):
        """Same-size corruption passes open (O(1)) but fails verify()."""
        victim = store_dir / "edge_parts.bin"
        data = bytearray(victim.read_bytes())
        data[0] ^= 0xFF
        victim.write_bytes(bytes(data))
        store = PartitionStore.open(store_dir)  # size still matches
        with pytest.raises(FormatError, match="edge_parts.bin"):
            store.verify()

    def test_length_mismatch_rejected(self, served, tmp_path):
        graph, result = served
        with pytest.raises(PartitioningError):
            PartitionStore.write(
                tmp_path / "bad", result, graph.edges[:-1]
            )

    def test_from_assignments_matches_result_store(self, served, tmp_path):
        """The CLI pipeline path rebuilds identical serving arrays."""
        graph, result = served
        a = PartitionStore.write(tmp_path / "a", result, graph.edges)
        b = PartitionStore.from_assignments(
            tmp_path / "b", graph.edges, result.assignments, result.k,
            n_vertices=graph.n_vertices,
        )
        np.testing.assert_array_equal(a.assignments, b.assignments)
        np.testing.assert_array_equal(a.edge_keys, b.edge_keys)
        np.testing.assert_array_equal(a.edge_parts, b.edge_parts)
        np.testing.assert_array_equal(a.degrees, b.degrees)
        np.testing.assert_array_equal(a.sizes, b.sizes)
        np.testing.assert_array_equal(
            np.asarray(a.replicas), np.asarray(b.replicas)
        )

    def test_from_assignments_rejects_bad_partition_ids(self, tmp_path):
        edges = np.array([[0, 1], [1, 2]], dtype=np.uint32)
        with pytest.raises(PartitioningError):
            PartitionStore.from_assignments(
                tmp_path / "bad", edges, np.array([0, 4]), k=2
            )

    def test_c2p_persisted_when_kept(self, served, tmp_path):
        graph, result = served
        store = PartitionStore.write(tmp_path / "s", result, graph.edges)
        assert store.c2p is not None
        reopened = PartitionStore.open(tmp_path / "s")
        np.testing.assert_array_equal(
            reopened.c2p, result.artifacts.c2p
        )

    def test_nbytes_matches_disk(self, store_dir):
        store = PartitionStore.open(store_dir)
        on_disk = sum(
            (store_dir / e["file"]).stat().st_size
            for e in store.manifest["arrays"].values()
        )
        assert store.nbytes() == on_disk


class TestLookupService:
    def test_batched_equals_scalar(self, served, store_dir):
        graph, result = served
        svc = LookupService(PartitionStore.open(store_dir))
        rng = np.random.default_rng(3)
        ids = rng.integers(0, graph.n_vertices, size=200)
        batched = svc.vertex_partitions(ids)
        scalar = np.array([svc.vertex_partitions(int(v)) for v in ids])
        np.testing.assert_array_equal(batched, scalar)
        eids = rng.integers(0, graph.n_edges, size=200)
        us, vs = graph.edges[eids, 0], graph.edges[eids, 1]
        batched_e = svc.edge_partition(us, vs)
        scalar_e = np.array(
            [svc.edge_partition(int(u), int(v)) for u, v in zip(us, vs)]
        )
        np.testing.assert_array_equal(batched_e, scalar_e)

    def test_routing_least_loaded_with_tiebreak(self, tmp_path):
        # Hand-built store: one edge per partition pair so the replica
        # sets and sizes are fully controlled.
        edges = np.array(
            [[0, 1], [0, 2], [0, 3], [1, 2]], dtype=np.uint32
        )
        assignments = np.array([0, 1, 2, 1], dtype=np.int32)
        store = PartitionStore.from_assignments(
            tmp_path / "s", edges, assignments, k=3
        )
        svc = LookupService(store)
        # sizes = [1, 2, 1]; vertex 0 replicates everywhere -> least
        # loaded, lowest id on the tie between partitions 0 and 2.
        assert svc.vertex_partitions(0) == 0
        # vertex 3 only lives on partition 2.
        assert svc.vertex_partitions(3) == 2
        # vertex 1 lives on {0, 1}: least loaded is 0.
        assert svc.vertex_partitions(1) == 0

    def test_hint_prefers_colocated_replica(self, served, store_dir):
        graph, result = served
        svc = LookupService(PartitionStore.open(store_dir))
        dense = np.asarray(result.state.replicas, dtype=bool)
        ids = np.arange(graph.n_vertices)
        hinted = svc.vertex_partitions(ids, hint=4)
        default = svc.vertex_partitions(ids)
        np.testing.assert_array_equal(
            hinted, np.where(dense[:, 4], 4, default)
        )
        # Per-id hint array form.
        hints = np.full(ids.shape, 4)
        np.testing.assert_array_equal(
            svc.vertex_partitions(ids, hint=hints), hinted
        )
        # An out-of-range hint falls back to default routing.
        np.testing.assert_array_equal(
            svc.vertex_partitions(ids, hint=-1), default
        )

    def test_replica_free_vertex_routes_to_minus_one(self, tmp_path):
        edges = np.array([[0, 1]], dtype=np.uint32)
        store = PartitionStore.from_assignments(
            tmp_path / "s", edges, np.array([0]), k=2, n_vertices=5
        )
        svc = LookupService(store)
        assert svc.vertex_partitions(4) == -1
        np.testing.assert_array_equal(
            svc.vertex_partitions(np.array([0, 4])), [0, -1]
        )

    def test_out_of_range_vertex_rejected(self, store_dir):
        svc = LookupService(PartitionStore.open(store_dir))
        with pytest.raises(PartitioningError):
            svc.vertex_partitions(svc.n_vertices)
        with pytest.raises(PartitioningError):
            svc.vertex_partitions(np.array([0, -1]))

    def test_missing_edge_answers_minus_one(self, served, store_dir):
        graph, _ = served
        svc = LookupService(PartitionStore.open(store_dir))
        n = graph.n_vertices
        assert svc.edge_partition(n + 10, n + 11) == -1

    def test_lru_eviction_and_counters(self, store_dir):
        svc = LookupService(PartitionStore.open(store_dir), cache_size=2)
        svc.vertex_partitions(0)  # miss -> cache [0]
        svc.vertex_partitions(1)  # miss -> cache [0, 1]
        svc.vertex_partitions(0)  # hit, 0 becomes MRU -> [1, 0]
        svc.vertex_partitions(2)  # miss, evicts LRU vertex 1 -> [0, 2]
        svc.vertex_partitions(0)  # hit: survived the eviction -> [2, 0]
        svc.vertex_partitions(1)  # miss again: it was evicted
        info = svc.cache_info()
        assert info == {"hits": 2, "misses": 4, "size": 2, "capacity": 2}
        svc.cache_clear()
        assert svc.cache_info() == {
            "hits": 0, "misses": 0, "size": 0, "capacity": 2,
        }

    def test_cache_disabled(self, store_dir):
        svc = LookupService(PartitionStore.open(store_dir), cache_size=0)
        svc.vertex_partitions(0)
        svc.vertex_partitions(0)
        assert svc.cache_info() == {
            "hits": 0, "misses": 0, "size": 0, "capacity": 0,
        }

    def test_cached_rows_serve_same_answers(self, served, store_dir):
        graph, _ = served
        svc = LookupService(PartitionStore.open(store_dir), cache_size=8)
        ids = [0, 1, 2, 0, 1, 2, 3, 0]
        cold = [svc.vertex_partitions(v) for v in ids]
        warm = [svc.vertex_partitions(v) for v in ids]
        assert cold == warm
        assert svc.cache_info()["hits"] > 0

    def test_negative_cache_size_rejected(self, store_dir):
        with pytest.raises(PartitioningError):
            LookupService(PartitionStore.open(store_dir), cache_size=-1)

    def test_duplicate_edges_serve_first_occurrence(self, tmp_path):
        # The same (u, v) pair assigned to different partitions: lookups
        # must serve the first stream occurrence (index 0 here).
        edges = np.array(
            [[0, 1], [2, 3], [0, 1]], dtype=np.uint32
        )
        assignments = np.array([2, 0, 1], dtype=np.int32)
        store = PartitionStore.from_assignments(
            tmp_path / "s", edges, assignments, k=3
        )
        svc = LookupService(store)
        assert svc.edge_partition(0, 1) == 2
        np.testing.assert_array_equal(
            svc.edge_partition(edges[:, 0], edges[:, 1]), [2, 0, 2]
        )


class TestEdgeKeys:
    def test_key_layout(self):
        assert edge_keys(1, 2) == (1 << 32) | 2
        np.testing.assert_array_equal(
            edge_keys([0, 2**32 - 1], [2**32 - 1, 0]),
            np.array([2**32 - 1, (2**32 - 1) << 32], dtype=np.uint64),
        )

    def test_write_rejects_oversized_ids(self, tmp_path):
        edges = np.array([[0, 2**32]], dtype=np.uint64)
        with pytest.raises(PartitioningError, match="32-bit"):
            PartitionStore.from_assignments(
                tmp_path / "bad", edges, np.array([0]), k=1
            )
