"""Kernel-backend contract tests (see :mod:`repro.kernels`).

The contract: every backend is bit-exact with the ``python`` reference
backend for any stream, chunk size, k and alpha — identical per-edge
assignments, replication state, balance, cluster ids and cost counters.
Chunk size must be a pure performance knob.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import DBH, Grid, RandomHash
from repro.core import IncrementalPartitioner, TwoPhasePartitioner
from repro.core.clustering import StreamingClustering
from repro.errors import ConfigurationError, PartitioningError
from repro.graph import Graph
from repro.graph.degrees import compute_degrees_from_stream
from repro.graph.generators import rmat_graph
from repro.kernels import (
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.kernels.base import Int64Buffer
from repro.kernels.numba_backend import NumbaBackend
from repro.partitioning import LeastLoadedTracker, PartitionArtifacts
from repro.partitioning.state import PartitionState
from repro.streaming import DEFAULT_CHUNK_SIZE, InMemoryEdgeStream

#: Every non-reference backend is pinned to the reference here.
VECTOR_BACKENDS = [n for n in available_backends() if n != "python"]


def _merge_op_backends():
    """Backend instances for the Phase-1 merge-op twins: every registered
    backend, plus the numba backend in its interpreted mode when the real
    dependency is absent — ``merge_phase1_degrees`` and
    ``merge_phase1_clustering`` must stay bit-exact across all three
    implementations on every host."""
    impls = [get_backend(name) for name in available_backends()]
    if "numba" not in available_backends():
        impls.append(NumbaBackend())
    return impls


MERGE_OP_BACKENDS = _merge_op_backends()

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Degenerate and odd chunk sizes, including 1 and larger than any edge
#: count the graph strategy can produce.
CHUNK_SIZES = st.sampled_from([1, 2, 7, 64, 500])


@st.composite
def graphs(draw, max_vertices=60, max_edges=300):
    """Random non-empty multigraphs (self-loops and duplicates allowed)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    return Graph(edges, n)


def assert_results_identical(reference, other):
    """Bit-exact equality of two partitioning results."""
    np.testing.assert_array_equal(reference.assignments, other.assignments)
    np.testing.assert_array_equal(reference.state.sizes, other.state.sizes)
    np.testing.assert_array_equal(
        reference.state.replicas, other.state.replicas
    )
    assert reference.replication_factor == other.replication_factor
    assert reference.measured_alpha == other.measured_alpha
    assert reference.cost == other.cost


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
class TestBackendEquivalence:
    @SLOW
    @given(
        graph=graphs(),
        k=st.integers(min_value=2, max_value=12),
        alpha=st.sampled_from([1.0, 1.01, 1.05, 1.5]),
        chunk_size=CHUNK_SIZES,
    )
    def test_2psl_bit_exact(self, backend, graph, k, alpha, chunk_size):
        ref = TwoPhasePartitioner(backend="python").partition(
            graph, k, alpha=alpha, chunk_size=chunk_size
        )
        out = TwoPhasePartitioner(backend=backend).partition(
            graph, k, alpha=alpha, chunk_size=chunk_size
        )
        assert_results_identical(ref, out)
        assert ref.extras["prepartitioned_edges"] == (
            out.extras["prepartitioned_edges"]
        )

    @SLOW
    @given(
        graph=graphs(max_edges=150),
        k=st.integers(min_value=2, max_value=8),
        chunk_size=CHUNK_SIZES,
        passes=st.integers(min_value=1, max_value=3),
    )
    def test_2psl_restreaming_bit_exact(
        self, backend, graph, k, chunk_size, passes
    ):
        ref = TwoPhasePartitioner(
            backend="python", clustering_passes=passes
        ).partition(graph, k, chunk_size=chunk_size)
        out = TwoPhasePartitioner(
            backend=backend, clustering_passes=passes
        ).partition(graph, k, chunk_size=chunk_size)
        assert_results_identical(ref, out)

    @SLOW
    @given(
        graph=graphs(max_edges=120),
        k=st.integers(min_value=2, max_value=8),
        chunk_size=CHUNK_SIZES,
        alpha=st.sampled_from([1.0, 1.05, 1.5]),
    )
    def test_2pshdrf_bit_exact(self, backend, graph, k, chunk_size, alpha):
        ref = TwoPhasePartitioner(backend="python", mode="hdrf").partition(
            graph, k, alpha=alpha, chunk_size=chunk_size
        )
        out = TwoPhasePartitioner(backend=backend, mode="hdrf").partition(
            graph, k, alpha=alpha, chunk_size=chunk_size
        )
        assert_results_identical(ref, out)

    @pytest.mark.parametrize("mode", ["linear", "hdrf"])
    @pytest.mark.parametrize("chunk_size", [1, 64, 10**6])
    def test_hub_heavy_rmat_bit_exact(self, backend, mode, chunk_size):
        """Hub-heavy R-MAT: worst case for conflict-free batching (hubs
        collide in nearly every block) and for the HDRF speculation
        (balance-dominated decisions); chunk_size sweeps through 1 and
        far beyond |E|."""
        graph = rmat_graph(9, edge_factor=8, seed=3)
        ref = TwoPhasePartitioner(backend="python", mode=mode).partition(
            graph, 8, chunk_size=chunk_size
        )
        out = TwoPhasePartitioner(backend=backend, mode=mode).partition(
            graph, 8, chunk_size=chunk_size
        )
        assert_results_identical(ref, out)

    @pytest.mark.parametrize("hdrf_lambda", [0.0, 1.1, 15.0])
    def test_2pshdrf_lambda_sweep_bit_exact(self, backend, hdrf_lambda):
        """Degenerate (0: reference-kernel fallback) and dominant balance
        weights both stay bit-exact."""
        graph = rmat_graph(8, edge_factor=8, seed=5)
        ref = TwoPhasePartitioner(
            backend="python", mode="hdrf", hdrf_lambda=hdrf_lambda
        ).partition(graph, 6)
        out = TwoPhasePartitioner(
            backend=backend, mode="hdrf", hdrf_lambda=hdrf_lambda
        ).partition(graph, 6)
        assert_results_identical(ref, out)

    def test_2pshdrf_tight_cap_bit_exact(self, backend):
        """alpha=1.0 keeps the hard cap reachable in nearly every block,
        exercising the serial cap guard of the HDRF kernel."""
        graph = rmat_graph(8, edge_factor=8, seed=7)
        ref = TwoPhasePartitioner(backend="python", mode="hdrf").partition(
            graph, 5, alpha=1.0, chunk_size=37
        )
        out = TwoPhasePartitioner(backend=backend, mode="hdrf").partition(
            graph, 5, alpha=1.0, chunk_size=37
        )
        assert_results_identical(ref, out)

    @SLOW
    @given(
        graph=graphs(),
        chunk_size=CHUNK_SIZES,
        use_true=st.booleans(),
        passes=st.integers(min_value=1, max_value=3),
    )
    def test_clustering_bit_exact(
        self, backend, graph, chunk_size, use_true, passes
    ):
        results = {}
        for name in ("python", backend):
            stream = InMemoryEdgeStream(graph)
            stream.default_chunk_size = chunk_size
            degrees = (
                compute_degrees_from_stream(stream, backend=name)
                if use_true
                else None
            )
            results[name] = StreamingClustering(
                n_passes=passes,
                volume_cap=graph.n_edges / 2 + 1,
                use_true_degrees=use_true,
                backend=name,
            ).run(stream, degrees=degrees, n_vertices=graph.n_vertices)
        ref, out = results["python"], results[backend]
        np.testing.assert_array_equal(ref.v2c, out.v2c)
        np.testing.assert_array_equal(ref.volumes, out.volumes)
        np.testing.assert_array_equal(ref.degrees, out.degrees)

    @SLOW
    @given(graph=graphs(), chunk_size=CHUNK_SIZES)
    def test_degree_pass_bit_exact(self, backend, graph, chunk_size):
        stream = InMemoryEdgeStream(graph)
        stream.default_chunk_size = chunk_size
        ref = compute_degrees_from_stream(stream, backend="python")
        out = compute_degrees_from_stream(stream, backend=backend)
        np.testing.assert_array_equal(ref, out)

    @SLOW
    @given(
        graph=graphs(),
        k=st.integers(min_value=2, max_value=12),
        chunk_size=CHUNK_SIZES,
        algo=st.sampled_from([DBH, Grid, RandomHash]),
    )
    def test_stateless_bit_exact(self, backend, graph, k, chunk_size, algo):
        ref = algo(backend="python").partition(
            graph, k, chunk_size=chunk_size
        )
        out = algo(backend=backend).partition(graph, k, chunk_size=chunk_size)
        assert_results_identical(ref, out)


class TestChunkSizeIsPerfKnobOnly:
    @SLOW
    @given(
        graph=graphs(max_edges=150),
        k=st.integers(min_value=2, max_value=8),
        chunk_size=CHUNK_SIZES,
    )
    def test_chunk_size_never_changes_output(self, graph, k, chunk_size):
        base = TwoPhasePartitioner().partition(graph, k)
        out = TwoPhasePartitioner(chunk_size=chunk_size).partition(graph, k)
        assert_results_identical(base, out)

    @staticmethod
    def _spy_on_chunks(stream, observed):
        original = stream.chunks

        def spy(chunk_size=None):
            for chunk in original(chunk_size):
                observed.append(chunk.shape[0])
                yield chunk

        stream.chunks = spy

    def test_chunk_size_plumbs_to_every_pass(self, community_graph):
        stream = InMemoryEdgeStream(community_graph)
        observed = []
        self._spy_on_chunks(stream, observed)
        TwoPhasePartitioner().partition(stream, 4, chunk_size=123)
        assert observed and max(observed) <= 123
        # Scoped to the run: the caller's stream default is restored.
        assert stream.default_chunk_size == DEFAULT_CHUNK_SIZE

    def test_constructor_chunk_size_used(self, community_graph):
        stream = InMemoryEdgeStream(community_graph)
        observed = []
        self._spy_on_chunks(stream, observed)
        TwoPhasePartitioner(chunk_size=77).partition(stream, 4)
        assert observed and max(observed) <= 77
        assert stream.default_chunk_size == DEFAULT_CHUNK_SIZE

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoPhasePartitioner(chunk_size=0)


class TestRegistry:
    def test_default_backend_is_numpy(self):
        assert DEFAULT_BACKEND == "numpy"
        assert get_backend().name == "numpy"

    def test_reference_backend_listed_first(self):
        assert available_backends()[0] == "python"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            get_backend("cuda")
        with pytest.raises(ConfigurationError):
            TwoPhasePartitioner(backend="cuda")

    def test_register_requires_kernel_backend(self):
        with pytest.raises(ConfigurationError):
            register_backend("bogus", dict)

    def test_register_requires_matching_name(self):
        """Alias registrations are rejected: the parallel path ships the
        resolved instance name to workers, so key != cls.name would make
        worker-side lookups fail."""

        class Misnamed(NumbaBackend):
            name = "other"

        with pytest.raises(ConfigurationError):
            register_backend("fast", Misnamed)
        assert "fast" not in available_backends()

    def test_backend_recorded_in_extras(self, community_graph):
        result = TwoPhasePartitioner().partition(community_graph, 4)
        assert result.extras["backend"] == DEFAULT_BACKEND

    def test_backends_are_kernel_instances(self):
        for name in available_backends():
            assert isinstance(get_backend(name), KernelBackend)


class TestArtifacts:
    def test_keep_state_exposes_typed_artifacts(self, community_graph):
        result = TwoPhasePartitioner(keep_state=True).partition(
            community_graph, 4
        )
        assert isinstance(result.artifacts, PartitionArtifacts)
        assert result.artifacts.clustering is not None
        assert result.artifacts.c2p is not None
        assert "_clustering" not in result.extras
        assert "_c2p" not in result.extras

    def test_no_artifacts_by_default(self, community_graph):
        result = TwoPhasePartitioner().partition(community_graph, 4)
        assert result.artifacts is None
        with pytest.raises(PartitioningError):
            IncrementalPartitioner.from_result(result)

    def test_incremental_builds_from_artifacts(self, community_graph):
        result = TwoPhasePartitioner(keep_state=True).partition(
            community_graph, 4
        )
        inc = IncrementalPartitioner.from_result(result)
        assert inc.replication_factor() == pytest.approx(
            result.replication_factor
        )


class TestLeastLoadedTracker:
    @SLOW
    @given(
        k=st.integers(min_value=1, max_value=24),
        increments=st.lists(
            st.integers(min_value=0, max_value=23), max_size=200
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_matches_linear_scan_under_growth(self, k, increments, seed):
        rng = np.random.default_rng(seed)
        sizes = [0] * k
        tracker = LeastLoadedTracker(sizes)
        for p in increments:
            sizes[p % k] += int(rng.integers(1, 4))
            expected = min(range(k), key=sizes.__getitem__)
            assert tracker.argmin() == expected

    def test_works_on_numpy_sizes(self):
        sizes = np.array([5, 3, 3, 9], dtype=np.int64)
        tracker = LeastLoadedTracker(sizes)
        assert tracker.argmin() == 1
        sizes[1] += 10
        assert tracker.argmin() == 2


class TestStateBatchApis:
    def test_scatter_edges_matches_serial_assign(self):
        rng = np.random.default_rng(3)
        n, k, m = 40, 5, 200
        us = rng.integers(0, n, m)
        vs = rng.integers(0, n, m)
        ps = rng.integers(0, k, m).astype(np.int32)
        batch = PartitionState(n, k, m, alpha=64.0)
        batch.scatter_edges(us, vs, ps)
        serial = PartitionState(n, k, m, alpha=64.0)
        for u, v, p in zip(us.tolist(), vs.tolist(), ps.tolist()):
            serial.assign(u, v, p)
        np.testing.assert_array_equal(batch.sizes, serial.sizes)
        np.testing.assert_array_equal(batch.replicas, serial.replicas)

    def test_int64_buffer_grows(self):
        buf = Int64Buffer(initial_capacity=2)
        for i in range(100):
            buf.append(i * 3)
        assert len(buf) == 100
        assert buf[99] == 297
        np.testing.assert_array_equal(
            buf.view(), np.arange(100, dtype=np.int64) * 3
        )
        buf[0] = -7
        assert buf.view()[0] == -7


class TestPhase1MergeOps:
    """The Phase-1 barrier merge twins (ISSUE 4): bit-exact across
    backends, and the merged clustering keeps the Algorithm-1 volume
    invariant by construction."""

    @staticmethod
    def _barrier_scenario(graph, k, n_workers):
        """A realistic barrier: snapshot = clustering of the stream's
        first half (reference backend), worker exports = one disjoint
        window each over the second half, clustered from the snapshot."""
        from repro.core.clustering import default_volume_cap

        py = get_backend("python")
        m = graph.n_edges
        degrees = py.degree_pass(InMemoryEdgeStream(graph), graph.n_vertices)
        cap = default_volume_cap(m, k, 0.5)
        st0 = py.clustering_init(degrees)
        half = m // 2
        py.clustering_true_pass(
            InMemoryEdgeStream(graph.edges[:half], graph.n_vertices),
            st0, cap, None,
        )
        v2c_g, vol_g, _ = py.clustering_export(st0)
        bounds = np.linspace(half, m, n_workers + 1).astype(int)
        exports = []
        for w in range(n_workers):
            window = graph.edges[bounds[w] : bounds[w + 1]]
            stw = py.clustering_load(v2c_g, vol_g, degrees)
            py.clustering_true_pass(
                InMemoryEdgeStream(window, graph.n_vertices), stw, cap, None
            )
            e_v2c, e_vol, _ = py.clustering_export(stw)
            exports.append((e_v2c, e_vol))
        return v2c_g, vol_g, exports, degrees

    @SLOW
    @given(
        graph=graphs(),
        k=st.integers(min_value=2, max_value=8),
        n_workers=st.integers(min_value=1, max_value=5),
    )
    def test_clustering_merge_twins_agree(self, graph, k, n_workers):
        v2c_g, vol_g, exports, degrees = self._barrier_scenario(
            graph, k, n_workers
        )
        merged = {}
        for backend in MERGE_OP_BACKENDS:
            merged[backend.name] = backend.merge_phase1_clustering(
                v2c_g, vol_g, exports, degrees
            )
        ref_v2c, ref_vol = merged["python"]
        for backend, (v2c, vol) in merged.items():
            np.testing.assert_array_equal(ref_v2c, v2c, err_msg=backend)
            np.testing.assert_array_equal(ref_vol, vol, err_msg=backend)
        # Volume invariant: merged volumes == sum of member true degrees.
        recomputed = np.zeros_like(ref_vol)
        mask = ref_v2c >= 0
        np.add.at(recomputed, ref_v2c[mask], degrees[mask])
        np.testing.assert_array_equal(recomputed, ref_vol)
        # Fresh-id remap stays in range and unchanged vertices keep
        # their snapshot assignment unless some worker moved them.
        assert ref_v2c.max(initial=-1) < ref_vol.shape[0]
        unchanged = np.ones(len(ref_v2c), dtype=bool)
        for e_v2c, _ in exports:
            unchanged &= e_v2c == v2c_g
        np.testing.assert_array_equal(ref_v2c[unchanged], v2c_g[unchanged])

    def test_clustering_merge_first_worker_wins(self):
        v2c_g = np.array([0, 1, -1], dtype=np.int64)
        vol_g = np.array([4, 2], dtype=np.int64)
        degrees = np.array([4, 2, 3], dtype=np.int64)
        # Worker 0 moves vertex 0 to cluster 1 and claims vertex 2 into a
        # fresh cluster 2; worker 1 disagrees on both (vertex 0 -> its own
        # fresh cluster, vertex 2 -> cluster 0): worker 0 must win both.
        exports = [
            (np.array([1, 1, 2], dtype=np.int64),
             np.array([0, 6, 3], dtype=np.int64)),
            (np.array([2, 1, 0], dtype=np.int64),
             np.array([7, 2, 4], dtype=np.int64)),
        ]
        for backend in MERGE_OP_BACKENDS:
            v2c, vol = backend.merge_phase1_clustering(
                v2c_g, vol_g, exports, degrees
            )
            # worker 1's fresh id (2) remaps past worker 0's fresh count
            # to 3; nobody kept a vertex there, so its volume is 0.
            assert v2c.tolist() == [1, 1, 2]
            assert vol.tolist() == [0, 6, 3, 0]

    @SLOW
    @given(
        n_hint=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_partials=st.integers(min_value=0, max_value=5),
    )
    def test_degree_merge_twins_agree(self, n_hint, seed, n_partials):
        rng = np.random.default_rng(seed)
        partials = [
            rng.integers(0, 50, size=rng.integers(0, 30)).astype(np.int64)
            for _ in range(n_partials)
        ]
        results = [
            backend.merge_phase1_degrees(partials, n_hint)
            for backend in MERGE_OP_BACKENDS
        ]
        for out in results[1:]:
            np.testing.assert_array_equal(results[0], out)
        assert results[0].shape[0] >= n_hint
        assert results[0].dtype == np.int64

    @pytest.mark.parametrize(
        "kernels", MERGE_OP_BACKENDS, ids=lambda b: b.name
    )
    def test_clustering_load_round_trips(self, kernels, community_graph):
        """load(export(state)) must reproduce export(state) exactly and
        must copy: mutating the loaded state leaves the source intact."""
        from repro.core.clustering import default_volume_cap
        stream = InMemoryEdgeStream(community_graph)
        degrees = kernels.degree_pass(stream, community_graph.n_vertices)
        cap = default_volume_cap(community_graph.n_edges, 4, 0.5)
        st = kernels.clustering_init(degrees)
        kernels.clustering_true_pass(stream, st, cap, None)
        v2c, vol, deg = kernels.clustering_export(st)
        loaded = kernels.clustering_load(v2c, vol, deg)
        v2c2, vol2, deg2 = kernels.clustering_export(loaded)
        np.testing.assert_array_equal(v2c, v2c2)
        np.testing.assert_array_equal(vol, vol2)
        np.testing.assert_array_equal(deg, deg2)
        loaded2 = kernels.clustering_load(v2c, vol, deg)
        loaded2.v2c[0] = 10**6
        assert v2c[0] != 10**6
