"""Seeded randomized differential harness for the parallel surface.

One seed deterministically derives a complete partitioning scenario — a
random graph (R-MAT, hub-heavy R-MAT, or Chung-Lu power-law), ``k``,
``alpha``, chunk size, sync interval, worker count, scoring mode,
clustering passes and whether Phase 1 is sharded — and the harness runs it
through the full runner/backend matrix, asserting the equivalence
contract of :mod:`repro.core.runners` on the **full final state**:

- per-edge assignments, the replica matrix, partition sizes and the
  machine-neutral cost counters are byte-identical between
  ``SimulatedRunner``, ``ProcessRunner`` and ``DistributedRunner``
  (loopback socket workers speaking the versioned wire protocol) under
  the same schedule, for every kernel backend;
- kernel backends are byte-identical to each other within every runner;
- ``SerialRunner`` is byte-identical to the sequential
  ``TwoPhasePartitioner`` (for any configured worker count);
- with ``n_workers=1`` the sharded schedule itself is byte-identical to
  the sequential pipeline (both phases — degrees, clustering, mapping,
  pre-partitioning, scoring);
- the batched classic-HDRF baseline agrees across every backend, and —
  on cases drawing ``tune=True`` — ``tune="auto"`` runs (both the
  parallel matrix and the baseline) are byte-identical to untuned ones;
- the **serving round-trip** (:func:`assert_store_round_trip`): the
  sequential reference persisted as a
  :class:`~repro.serving.store.PartitionStore` and reopened
  memory-mapped serves every vertex and edge lookup bit-equal to the
  in-memory :class:`PartitionResult` — replica rows, degrees, sizes,
  routing, and per-edge ownership including duplicate-edge
  (first-stream-occurrence) semantics;
- no shared-memory segment, wire connection or distributed worker
  process survives any runner session.

The backend dimension is :func:`repro.kernels.available_backends`, so the
sweep is {python, numpy} everywhere and gains the compiled ``numba``
backend automatically on hosts where numba is importable (the numba CI
leg) — registration order is the only wiring a new backend needs.

Every failure message carries the generating seed, so any red run is
reproducible with::

    PYTHONPATH=src python tests/differential.py --seed <seed>

``tests/test_differential.py`` drives a fixed seed matrix through this
module in CI; bump ``EXTRA_RANDOM_SEEDS`` locally for a longer soak.

The **huge-shape out-of-core tier** (:func:`check_out_of_core_seed`) runs
the identical bit-exactness contract on down-scaled shapes drawn to
stress the out-of-core machinery: ``k`` values above 8 and off byte
boundaries (packed-row tail bits), the graph round-tripped through a
binary edge file, and every storage variant — packed vs dense state,
prefetching vs synchronous file streams, file vs in-memory ingestion —
must land on the byte-identical final state within every runner/backend
cell.  Reproduce with ``--out-of-core --seed <seed>``.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, replace

import numpy as np

from repro.baselines import HDRF
from repro.core import ParallelTwoPhase, TwoPhasePartitioner
from repro.core.distributed import live_connections, live_worker_processes
from repro.core.runners import live_shared_segments
from repro.graph.generators import chung_lu_graph, rmat_graph
from repro.kernels import available_backends
from repro.streaming import FileEdgeStream
from repro.streaming.writer import EdgeListWriter

#: The full runner matrix the harness sweeps.  ``distributed`` is the
#: socket-protocol runner in loopback mode: same schedule, same merge
#: ops, but every delta crosses a wire frame instead of shared memory —
#: the sweep pins it bit-exact against the in-process runners.
RUNNERS = ("serial", "simulated", "process", "distributed")

#: Extras that must agree wherever the state agrees (schedule-derived).
_CHECKED_EXTRAS = (
    "prepartitioned_edges",
    "n_clusters",
    "syncs",
    "phase1_syncs",
)


@dataclass(frozen=True)
class DifferentialCase:
    """One fully-specified scenario, derived deterministically from a seed."""

    seed: int
    generator: str
    graph_args: tuple
    k: int
    alpha: float
    chunk_size: int
    sync_interval: int
    n_workers: int
    mode: str
    clustering_passes: int
    parallel_phase1: bool
    #: When True the parallel runs pass ``tune="auto"``: the auto-tuner
    #: probes the stream and (with backend and chunk size pinned by the
    #: case) may stretch ``sync_interval`` in the staleness-free regime.
    #: Every contract below still compares those tuned runs against the
    #: *untuned* sequential reference, so the sweep itself proves
    #: tuned == untuned bit-exactness.
    tune: bool = False

    def build_graph(self):
        if self.generator == "chung-lu":
            n, m, gamma, gseed = self.graph_args
            return chung_lu_graph(n, m, gamma=gamma, seed=gseed)
        scale, edge_factor, a, b, c, gseed = self.graph_args
        return rmat_graph(scale, edge_factor=edge_factor, a=a, b=b, c=c,
                          seed=gseed)


def make_case(seed: int) -> DifferentialCase:
    """Derive a scenario from ``seed`` (pure function of the seed)."""
    rng = np.random.default_rng(seed)
    generator = ("rmat", "hub-heavy", "chung-lu")[int(rng.integers(3))]
    gseed = int(rng.integers(2**31 - 1))
    if generator == "rmat":
        graph_args = (int(rng.integers(5, 8)), int(rng.integers(2, 7)),
                      0.57, 0.19, 0.19, gseed)
    elif generator == "hub-heavy":
        # Skewed quadrant mass: a few hubs collect most endpoints, which
        # maximizes conflict pressure on the stateful kernels.
        graph_args = (int(rng.integers(5, 7)), int(rng.integers(3, 8)),
                      0.7, 0.12, 0.12, gseed)
    else:
        n = int(rng.integers(30, 120))
        graph_args = (n, int(rng.integers(n, 4 * n)),
                      float(rng.uniform(1.9, 2.6)), gseed)
    return DifferentialCase(
        seed=seed,
        generator=generator,
        graph_args=graph_args,
        k=int(rng.integers(2, 10)),
        alpha=(1.0, 1.05, 1.5)[int(rng.integers(3))],
        chunk_size=(1, 7, 61, 256, 5000)[int(rng.integers(5))],
        sync_interval=(7, 63, 509, 10**9)[int(rng.integers(4))],
        n_workers=int(rng.integers(1, 5)),
        mode=("linear", "hdrf")[int(rng.integers(2))],
        clustering_passes=int(rng.integers(1, 3)),
        # Bias toward the sharded Phase 1 — the surface under test.
        parallel_phase1=bool(rng.integers(4) > 0),
        # Drawn LAST so pre-existing seeds keep their scenarios (the
        # fixed CI matrix stays meaningful across harness growth).
        tune=bool(rng.integers(2)),
    )


def run_case(case: DifferentialCase, runner: str, backend: str):
    """One parallel run of the scenario (graph rebuilt deterministically)."""
    return ParallelTwoPhase(
        n_workers=case.n_workers,
        sync_interval=case.sync_interval,
        clustering_passes=case.clustering_passes,
        mode=case.mode,
        backend=backend,
        runner=runner,
        parallel_phase1=case.parallel_phase1,
    ).partition(
        case.build_graph(), case.k, alpha=case.alpha,
        chunk_size=case.chunk_size,
        tune="auto" if case.tune else None,
    )


def sequential_reference(case: DifferentialCase, backend: str):
    """The sequential pipeline on the same scenario (never tuned: tuned
    parallel runs are compared against it, proving tuned == untuned)."""
    return TwoPhasePartitioner(
        clustering_passes=case.clustering_passes,
        mode=case.mode,
        backend=backend,
    ).partition(
        case.build_graph(), case.k, alpha=case.alpha,
        chunk_size=case.chunk_size,
    )


def hdrf_baseline(
    case: DifferentialCase, backend: str | None, tune: str | None = None
):
    """The classic-HDRF baseline on the scenario's graph/k/alpha."""
    return HDRF(backend=backend).partition(
        case.build_graph(), case.k, alpha=case.alpha,
        chunk_size=case.chunk_size, tune=tune,
    )


def assert_full_state_equal(reference, other, label: str) -> None:
    """Byte-level equality of two runs' complete final state."""
    np.testing.assert_array_equal(
        reference.assignments, other.assignments, err_msg=label
    )
    np.testing.assert_array_equal(
        reference.state.replicas, other.state.replicas, err_msg=label
    )
    np.testing.assert_array_equal(
        reference.state.sizes, other.state.sizes, err_msg=label
    )
    assert reference.cost == other.cost, (
        f"{label}: cost counters diverged: {reference.cost} != {other.cost}"
    )
    for key in _CHECKED_EXTRAS:
        if key in reference.extras and key in other.extras:
            assert reference.extras[key] == other.extras[key], (
                f"{label}: extras[{key!r}] diverged: "
                f"{reference.extras[key]} != {other.extras[key]}"
            )


def assert_store_round_trip(result, edges, label: str) -> None:
    """Serving round-trip contract: write → mmap-reopen → every lookup
    bit-equal to the in-memory ``result``.

    Covers the full vertex sweep (replica rows, degrees, sizes, routing
    with and without a hint) and the full edge sweep (ownership of every
    stored edge, duplicate keys serving the first stream occurrence, a
    guaranteed-missing edge answering -1), plus scalar-vs-batched
    consistency on a sample and the CRC-32 sweep.
    """
    from repro.serving import LookupService, PartitionStore

    edges = np.asarray(edges)
    with tempfile.TemporaryDirectory(prefix="diff_store_") as tmp:
        store_dir = os.path.join(tmp, "store")
        PartitionStore.write(store_dir, result, edges)
        store = PartitionStore.open(store_dir)
        store.verify()
        svc = LookupService(store)

        dense = np.asarray(result.state.replicas, dtype=bool)
        sizes = np.asarray(result.state.sizes, dtype=np.int64)
        n = result.n_vertices
        ids = np.arange(n, dtype=np.int64)

        # Replica rows bit-equal through the mapped packed plane.
        np.testing.assert_array_equal(
            np.asarray(store.replicas), dense,
            err_msg=f"{label}: mapped replica matrix",
        )
        np.testing.assert_array_equal(
            store.sizes, sizes, err_msg=f"{label}: stored sizes"
        )
        np.testing.assert_array_equal(
            store.degrees,
            np.bincount(edges.reshape(-1), minlength=n),
            err_msg=f"{label}: stored degrees",
        )

        # Vertex routing: least-loaded replica (lowest id on ties), -1
        # for replica-free vertices; hint wins iff co-located.
        load = np.where(dense, sizes[np.newaxis, :], np.inf)
        expected = np.argmin(load, axis=1).astype(np.int64)
        expected[~dense.any(axis=1)] = -1
        routed = svc.vertex_partitions(ids)
        np.testing.assert_array_equal(
            routed, expected, err_msg=f"{label}: vertex routing"
        )
        hint = result.k - 1
        hinted = svc.vertex_partitions(ids, hint=hint)
        np.testing.assert_array_equal(
            hinted, np.where(dense[:, hint], hint, expected),
            err_msg=f"{label}: hinted vertex routing",
        )
        for v in ids[:: max(1, n // 17)]:
            assert svc.vertex_partitions(int(v)) == routed[v], (
                f"{label}: scalar vs batched routing at vertex {v}"
            )
            np.testing.assert_array_equal(
                svc.replica_set(int(v)), np.flatnonzero(dense[v]),
                err_msg=f"{label}: replica_set({v})",
            )

        # Edge ownership: the full sweep; duplicate (u, v) keys serve
        # the first stream occurrence's partition.
        keys = (edges[:, 0].astype(np.uint64) << np.uint64(32)) | (
            edges[:, 1].astype(np.uint64)
        )
        order = np.argsort(keys, kind="stable")
        first_pos = np.searchsorted(keys[order], keys, side="left")
        expected_edge = np.asarray(result.assignments)[order[first_pos]]
        got_edge = svc.edge_partition(edges[:, 0], edges[:, 1])
        np.testing.assert_array_equal(
            got_edge, expected_edge, err_msg=f"{label}: edge ownership"
        )
        u, v = int(edges[0, 0]), int(edges[0, 1])
        assert svc.edge_partition(u, v) == int(expected_edge[0]), (
            f"{label}: scalar vs batched edge lookup"
        )
        assert svc.edge_partition(n + 1, n + 2) == -1, (
            f"{label}: missing edge must answer -1"
        )


def _active_runners(runners, include_process, include_distributed):
    return tuple(
        r for r in runners
        if (include_process or r != "process")
        and (include_distributed or r != "distributed")
    )


def _assert_nothing_leaked() -> None:
    """Shared-memory, socket and worker-process hygiene after a sweep."""
    leaked = sorted(live_shared_segments())
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    conns = live_connections()
    assert not conns, f"leaked wire connections: {conns}"
    procs = live_worker_processes()
    assert not procs, f"leaked distributed worker processes: {procs}"


def check_seed(
    seed: int,
    runners=RUNNERS,
    backends=None,
    include_process: bool = True,
    include_distributed: bool = True,
) -> DifferentialCase:
    """Run the full differential matrix for one seed.

    Raises ``AssertionError`` carrying the reproducing seed on any
    divergence; returns the generated case on success.
    """
    case = make_case(seed)
    if backends is None:
        backends = available_backends()
    active_runners = _active_runners(
        runners, include_process, include_distributed
    )
    try:
        results = {
            (runner, backend): run_case(case, runner, backend)
            for runner in active_runners
            for backend in backends
        }
        # Contract 1+2: simulated == process, backends agree, per runner.
        sharded = [key for key in results if key[0] != "serial"]
        if sharded:
            ref_key = sharded[0]
            for key in sharded[1:]:
                assert_full_state_equal(
                    results[ref_key], results[key],
                    f"{ref_key} vs {key}",
                )
        # Contract 3: serial == the sequential pipeline, every backend.
        seq = sequential_reference(case, backends[0])
        for backend in backends:
            key = ("serial", backend)
            if key in results:
                assert_full_state_equal(
                    seq, results[key], f"sequential vs {key}"
                )
        # Contract 4: a single worker is never stale.
        if case.n_workers == 1 and sharded:
            assert_full_state_equal(
                seq, results[sharded[0]],
                f"sequential vs {sharded[0]} at n_workers=1",
            )
        # Contract 5: the batched HDRF baseline (kernel-registry
        # dispatch) agrees across backends, and a tuned run — which may
        # pick a different backend, all of them bit-exact — agrees with
        # the untuned default.
        hdrf_ref = hdrf_baseline(case, backends[0])
        for backend in backends[1:]:
            assert_full_state_equal(
                hdrf_ref, hdrf_baseline(case, backend),
                f"HDRF baseline {backends[0]} vs {backend}",
            )
        if case.tune:
            assert_full_state_equal(
                hdrf_ref, hdrf_baseline(case, None, tune="auto"),
                "HDRF baseline untuned vs tuned",
            )
        # Contract 6: the serving round-trip — the sequential reference
        # persisted, mmap-reopened and queried is bit-equal throughout.
        assert_store_round_trip(
            seq, case.build_graph().edges, "store round-trip"
        )
        # Contract 7: nothing leaked — segments, sockets or workers.
        _assert_nothing_leaked()
    except AssertionError as exc:
        flag = " --distributed" if "distributed" in active_runners else ""
        raise AssertionError(
            f"differential seed {seed} failed ({case!r}); reproduce with: "
            f"PYTHONPATH=src python tests/differential.py --seed {seed}"
            f"{flag}\n{exc}"
        ) from exc
    return case


#: k values of the out-of-core tier: above 8 so a packed row spans more
#: than one byte, and mostly off byte boundaries so the tail bits of the
#: last byte are exercised (16 pins the exact-boundary case).
_HUGE_K = (9, 11, 13, 16, 17, 23, 31, 33)

#: Storage variants of the out-of-core tier, in sweep order.  The first
#: entry is the per-cell baseline every other variant must match.
_OOC_VARIANT_ORDER = (
    "dense/in-memory",
    "packed/in-memory",
    "packed/file-sync",
    "packed/file-prefetch",
    "dense/file-prefetch",
)

#: The process and distributed runners only run the endpoints of the
#: variant sweep (their baseline plus the fully out-of-core
#: configuration): pool/worker spawns dominate the tier's cost, and the
#: intermediate variants are already pinned against the same baseline by
#: the in-process runners.
_OOC_PROCESS_VARIANTS = ("dense/in-memory", "packed/file-prefetch")


def make_huge_case(seed: int) -> DifferentialCase:
    """Derive an out-of-core scenario from ``seed`` (pure function).

    Reuses :func:`make_case` for the graph/schedule dimensions, then
    redraws ``k`` from the packing-tail-stressing set and clamps the
    chunk size away from the degenerate per-edge sizes (a per-edge file
    stream is a different test than an out-of-core one).
    """
    base = make_case(seed)
    rng = np.random.default_rng(seed + 0x00C)
    return replace(
        base,
        k=_HUGE_K[int(rng.integers(len(_HUGE_K)))],
        chunk_size=(64, 181, 4096)[int(rng.integers(3))],
    )


def _run_out_of_core(case, runner, backend, packed, stream):
    """One run of the scenario over an explicit stream/state variant."""
    return ParallelTwoPhase(
        n_workers=case.n_workers,
        sync_interval=case.sync_interval,
        clustering_passes=case.clustering_passes,
        mode=case.mode,
        backend=backend,
        runner=runner,
        parallel_phase1=case.parallel_phase1,
        packed_state=packed,
    ).partition(
        stream, case.k, alpha=case.alpha, chunk_size=case.chunk_size
    )


def check_out_of_core_seed(
    seed: int,
    runners=RUNNERS,
    backends=None,
    include_process: bool = True,
    include_distributed: bool = True,
) -> DifferentialCase:
    """Run the huge-shape out-of-core differential tier for one seed.

    Within every runner/backend cell, all storage variants
    (``_OOC_VARIANT_ORDER``) must produce the byte-identical final
    state; across cells the base contract applies (backends agree,
    simulated == process, sequential packed-over-prefetch-file ==
    sequential dense-in-memory).  Raises ``AssertionError`` carrying
    the reproducing seed on any divergence.
    """
    case = make_huge_case(seed)
    if backends is None:
        backends = available_backends()
    active_runners = _active_runners(
        runners, include_process, include_distributed
    )
    graph = case.build_graph()
    try:
        with tempfile.TemporaryDirectory(prefix="diff_ooc_") as tmp:
            path = os.path.join(tmp, "edges.bin")
            with EdgeListWriter(path) as writer:
                # Chunked, like an external-memory generator would write.
                for lo in range(0, graph.n_edges, 512):
                    writer.write_chunk(graph.edges[lo:lo + 512])

            def make_stream(storage: str):
                if storage == "in-memory":
                    return graph
                return FileEdgeStream(
                    path,
                    n_vertices=graph.n_vertices,
                    prefetch=(storage == "file-prefetch"),
                )

            baselines = {}
            for runner in active_runners:
                names = (
                    _OOC_PROCESS_VARIANTS
                    if runner in ("process", "distributed")
                    else _OOC_VARIANT_ORDER
                )
                for backend in backends:
                    baseline = None
                    for name in names:
                        state_kind, storage = name.split("/")
                        result = _run_out_of_core(
                            case, runner, backend,
                            state_kind == "packed", make_stream(storage),
                        )
                        if baseline is None:
                            baseline = result
                        else:
                            assert_full_state_equal(
                                baseline, result,
                                f"{runner}/{backend}: "
                                f"{names[0]} vs {name}",
                            )
                    baselines[(runner, backend)] = baseline
            # Cross-cell contracts on the baselines: backends agree
            # within each runner; simulated == process.
            sharded = [key for key in baselines if key[0] != "serial"]
            for key in sharded[1:]:
                assert_full_state_equal(
                    baselines[sharded[0]], baselines[key],
                    f"{sharded[0]} vs {key}",
                )
            serial = [key for key in baselines if key[0] == "serial"]
            for key in serial[1:]:
                assert_full_state_equal(
                    baselines[serial[0]], baselines[key],
                    f"{serial[0]} vs {key}",
                )
            # Sequential surface: packed state fed by the prefetching
            # file stream == dense state fed by the in-memory graph.
            seq_dense = TwoPhasePartitioner(
                clustering_passes=case.clustering_passes,
                mode=case.mode,
                backend=backends[0],
            ).partition(
                graph, case.k, alpha=case.alpha,
                chunk_size=case.chunk_size,
            )
            seq_packed = TwoPhasePartitioner(
                clustering_passes=case.clustering_passes,
                mode=case.mode,
                backend=backends[0],
                packed_state=True,
            ).partition(
                make_stream("file-prefetch"), case.k, alpha=case.alpha,
                chunk_size=case.chunk_size,
            )
            assert_full_state_equal(
                seq_dense, seq_packed,
                "sequential dense/in-memory vs "
                "sequential packed/file-prefetch",
            )
            # Serving round-trip at the huge-shape k (mostly off byte
            # boundaries): the packed-state result exercises the
            # verbatim-plane store path, the dense result the packbits
            # path, and both must serve bit-equal lookups.
            assert_store_round_trip(
                seq_packed, graph.edges, "store round-trip (packed state)"
            )
            assert_store_round_trip(
                seq_dense, graph.edges, "store round-trip (dense state)"
            )
            _assert_nothing_leaked()
    except AssertionError as exc:
        flag = " --distributed" if "distributed" in active_runners else ""
        raise AssertionError(
            f"out-of-core differential seed {seed} failed ({case!r}); "
            f"reproduce with: PYTHONPATH=src python tests/differential.py "
            f"--out-of-core --seed {seed}{flag}\n{exc}"
        ) from exc
    return case


def main(argv=None) -> int:  # pragma: no cover - manual reproduction tool
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument(
        "--no-process", action="store_true",
        help="skip the multiprocessing runner (faster triage)",
    )
    parser.add_argument(
        "--out-of-core", action="store_true",
        help="run the huge-shape out-of-core tier instead of the base "
        "matrix (packed state, file streams, prefetching)",
    )
    parser.add_argument(
        "--distributed", action="store_true",
        help="include the socket-protocol distributed runner (loopback "
        "workers) in the sweep; CI always sweeps it, the manual tool "
        "defaults it off for faster triage",
    )
    args = parser.parse_args(argv)
    check = check_out_of_core_seed if args.out_of_core else check_seed
    case = check(
        args.seed,
        include_process=not args.no_process,
        include_distributed=args.distributed,
    )
    print(f"seed {args.seed} OK: {case}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
