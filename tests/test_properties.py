"""Property-based tests (hypothesis) on the core invariants.

These sweep randomly generated graphs and parameters through the
partitioners and substrates, asserting the invariants from DESIGN.md §4.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import DBH, HDRF, Grid, RandomHash
from repro.core import TwoPhasePartitioner, graham_schedule, makespan_lower_bound
from repro.core.clustering import StreamingClustering
from repro.graph import Graph
from repro.metrics import (
    replication_factor_from_assignments,
    validate_partition,
)
from repro.partitioning.hashutil import hash_to_partition
from repro.streaming import InMemoryEdgeStream

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=60, max_edges=300):
    """Random non-empty multigraphs (self-loops and duplicates allowed)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    return Graph(edges, n)


class TestPartitioningInvariants:
    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=12))
    def test_2psl_is_valid_partition(self, graph, k):
        result = TwoPhasePartitioner().partition(graph, k)
        validate_partition(graph.edges, result.assignments, k, alpha=1.05)

    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=12))
    def test_2psl_hard_cap(self, graph, k):
        result = TwoPhasePartitioner().partition(graph, k)
        assert result.sizes.max() <= result.state.capacity

    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=12))
    def test_hdrf_is_valid_partition(self, graph, k):
        result = HDRF().partition(graph, k)
        validate_partition(graph.edges, result.assignments, k, alpha=1.05)

    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=12))
    def test_stateless_are_valid(self, graph, k):
        for partitioner in (DBH(), Grid(), RandomHash()):
            result = partitioner.partition(graph, k)
            validate_partition(graph.edges, result.assignments, k)

    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=12))
    def test_rf_bounds(self, graph, k):
        """1 <= RF <= min(k, max_degree) over covered vertices."""
        result = TwoPhasePartitioner().partition(graph, k)
        rf = result.replication_factor
        assert 1.0 <= rf <= min(k, max(int(graph.max_degree), 1)) + 1e-9

    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=12))
    def test_rf_implementations_agree(self, graph, k):
        result = TwoPhasePartitioner().partition(graph, k)
        recomputed = replication_factor_from_assignments(
            graph.edges, result.assignments, k, graph.n_vertices
        )
        assert recomputed == pytest.approx(result.replication_factor)

    @SLOW
    @given(graph=graphs(), k=st.integers(min_value=2, max_value=8))
    def test_score_evals_bounded_by_two_per_edge(self, graph, k):
        """The linearity invariant of 2PS-L, on arbitrary graphs."""
        result = TwoPhasePartitioner().partition(graph, k)
        assert result.cost.score_evaluations <= 2 * graph.n_edges


class TestClusteringInvariants:
    @SLOW
    @given(
        graph=graphs(),
        passes=st.integers(min_value=1, max_value=3),
        cap=st.floats(min_value=5.0, max_value=500.0),
    )
    def test_volume_invariant(self, graph, passes, cap):
        result = StreamingClustering(n_passes=passes, volume_cap=cap).run(
            InMemoryEdgeStream(graph), degrees=graph.degrees
        )
        result.validate()

    @SLOW
    @given(graph=graphs(), cap=st.floats(min_value=5.0, max_value=500.0))
    def test_covered_vertices_clustered(self, graph, cap):
        result = StreamingClustering(volume_cap=cap).run(
            InMemoryEdgeStream(graph), degrees=graph.degrees
        )
        touched = np.unique(graph.edges)
        assert (result.v2c[touched] >= 0).all()
        assert (result.v2c[touched] < result.n_clusters).all()

    @SLOW
    @given(graph=graphs(), cap=st.floats(min_value=5.0, max_value=500.0))
    def test_migration_never_exceeds_cap(self, graph, cap):
        result = StreamingClustering(volume_cap=cap).run(
            InMemoryEdgeStream(graph), degrees=graph.degrees
        )
        # A cluster above the cap can only be a singleton whose vertex
        # degree alone exceeds the cap.
        over = np.where(result.volumes > cap)[0]
        for c in over:
            members = np.where(result.v2c == c)[0]
            assert members.shape[0] == 1
            assert graph.degrees[members[0]] > cap


class TestSchedulingInvariants:
    @SLOW
    @given(
        volumes=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=0, max_size=80
        ),
        k=st.integers(min_value=1, max_value=16),
    )
    def test_graham_four_thirds(self, volumes, k):
        volumes = np.asarray(volumes, dtype=np.int64)
        c2p, loads = graham_schedule(volumes, k)
        assert loads.sum() == volumes.sum()
        lower = makespan_lower_bound(volumes, k)
        if lower > 0:
            assert loads.max() <= (4.0 / 3.0) * lower + 1e-9

    @SLOW
    @given(
        volumes=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=1, max_size=80
        ),
        k=st.integers(min_value=1, max_value=16),
    )
    def test_graham_loads_consistent(self, volumes, k):
        volumes = np.asarray(volumes, dtype=np.int64)
        c2p, loads = graham_schedule(volumes, k)
        recomputed = np.zeros(k, dtype=np.int64)
        np.add.at(recomputed, c2p, volumes)
        assert np.array_equal(recomputed, loads)


class TestHashInvariants:
    @SLOW
    @given(
        values=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1),
        k=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_hash_range_and_determinism(self, values, k, seed):
        arr = np.asarray(values, dtype=np.int64)
        a = hash_to_partition(arr, k, seed)
        b = hash_to_partition(arr, k, seed)
        assert np.array_equal(a, b)
        assert a.min() >= 0
        assert a.max() < k


class TestStreamInvariants:
    @SLOW
    @given(graph=graphs(), chunk=st.integers(min_value=1, max_value=64))
    def test_chunking_reconstructs_stream(self, graph, chunk):
        stream = InMemoryEdgeStream(graph)
        collected = np.concatenate(list(stream.chunks(chunk_size=chunk)))
        assert np.array_equal(collected, graph.edges)

    @SLOW
    @given(graph=graphs())
    def test_stateless_order_invariance(self, graph):
        """DBH assigns each distinct edge the same partition in any order."""
        k = 4
        base = DBH().partition(graph, k)
        mapping = {}
        for e, p in zip(graph.edges.tolist(), base.assignments.tolist()):
            mapping[tuple(e)] = p
        shuffled = graph.shuffled(seed=1)
        other = DBH().partition(shuffled, k)
        for e, p in zip(shuffled.edges.tolist(), other.assignments.tolist()):
            assert mapping[tuple(e)] == p
