"""Tests for the extension experiments (motivation/dynamic/staleness/hypergraphs)."""

import pytest

from repro.experiments import dynamic, hypergraphs, motivation, staleness


class TestMotivation:
    def test_edge_partitioners_hold_balance(self):
        result = motivation.run(scale=0.08, k=8)
        for row in result.rows_for(family="edge"):
            if row["partitioner"] in ("2PS-L", "HDRF"):
                assert row["edge_alpha"] <= 1.06

    def test_vertex_partitioners_concentrate_edges(self):
        """The Section-I argument: vertex balance != edge balance."""
        result = motivation.run(scale=0.08, k=8)
        greedy_rows = [
            r
            for r in result.rows_for(family="vertex")
            if r["partitioner"] in ("LDG", "FENNEL")
        ]
        assert greedy_rows
        for row in greedy_rows:
            assert row["vertex_balance"] <= 1.11
            assert row["edge_alpha"] > 1.3

    def test_hash_vertex_worst_rf(self):
        result = motivation.run(scale=0.08, k=8)
        hash_rf = result.rows_for(partitioner="Hash-V")[0]["rf"]
        ours = result.rows_for(partitioner="2PS-L")[0]["rf"]
        assert ours < hash_rf


class TestDynamic:
    def test_rf_curves(self):
        result = dynamic.run(scale=0.06, churn_steps=(0.0, 0.1, 0.3))
        rows = result.rows
        assert rows[0]["churn"] == 0.0
        assert rows[0]["rf_gap"] == pytest.approx(1.0)
        # RF grows with random churn for both strategies.
        assert rows[-1]["incremental_rf"] > rows[0]["incremental_rf"]
        assert rows[-1]["batch_rf"] > rows[0]["batch_rf"]
        # The incremental state stays within a sane band of re-batching.
        for row in rows:
            assert row["rf_gap"] < 1.4

    def test_update_counts(self):
        result = dynamic.run(scale=0.06, churn_steps=(0.0, 0.2))
        assert result.rows[1]["updates"] > 0
        assert result.rows[1]["staleness"] > 0


class TestStaleness:
    def test_sequential_row_first(self):
        result = staleness.run(scale=0.06, intervals=(128, 8192))
        assert result.rows[0]["config"] == "sequential"

    def test_syncs_fall_with_interval(self):
        result = staleness.run(scale=0.06, intervals=(128, 8192))
        fine = result.rows_for(sync_interval=128)[0]
        coarse = result.rows_for(sync_interval=8192)[0]
        assert fine["syncs"] > coarse["syncs"]

    def test_quality_within_band(self):
        result = staleness.run(scale=0.06, intervals=(128, 8192))
        seq_rf = result.rows[0]["rf"]
        for row in result.rows[1:]:
            assert row["rf"] < seq_rf * 1.4


class TestHypergraphs:
    def test_rows_cover_all_systems_and_k(self):
        result = hypergraphs.run(n_hyperedges=1200, ks=(4, 16))
        assert len(result.rows) == 6

    def test_linear_vs_k_cost(self):
        result = hypergraphs.run(n_hyperedges=1200, ks=(4, 16))
        for k in (4, 16):
            two = result.rows_for(partitioner="2PS-L-H", k=k)[0]
            mm = result.rows_for(partitioner="MinMax", k=k)[0]
            assert two["evals_per_hyperedge"] <= 2.0
            assert mm["evals_per_hyperedge"] == k

    def test_quality_beats_hashing(self):
        result = hypergraphs.run(n_hyperedges=1200, ks=(16,))
        two = result.rows_for(partitioner="2PS-L-H", k=16)[0]
        hh = result.rows_for(partitioner="HashH", k=16)[0]
        assert two["rf"] < hh["rf"]
