"""Unit tests for edge streams (in-memory, file-backed) and I/O stats."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph import Graph
from repro.graph.degrees import compute_degrees, compute_degrees_from_stream
from repro.graph.formats import write_binary_edge_list
from repro.storage import ssd_device
from repro.streaming import FileEdgeStream, InMemoryEdgeStream
from repro.streaming.stream import (
    AUTO_CHUNK_MAX,
    AUTO_CHUNK_MIN,
    EdgeStream,
    as_stream,
    auto_chunk_size,
    make_stream_spec,
)


class TestInMemoryStream:
    def test_full_pass_covers_all_edges(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        total = sum(chunk.shape[0] for chunk in stream.chunks(chunk_size=64))
        assert total == powerlaw_graph.n_edges

    def test_chunks_preserve_order(self):
        g = Graph([(i, i + 1) for i in range(100)])
        stream = InMemoryEdgeStream(g)
        collected = np.concatenate(list(stream.chunks(chunk_size=7)))
        assert np.array_equal(collected, g.edges)

    def test_reiterable(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        first = sum(c.shape[0] for c in stream.chunks())
        second = sum(c.shape[0] for c in stream.chunks())
        assert first == second == powerlaw_graph.n_edges
        assert stream.stats.passes == 2

    def test_edges_iterator(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        assert list(stream.edges()) == [tuple(e) for e in toy_graph.edges.tolist()]

    def test_from_bare_array(self):
        stream = InMemoryEdgeStream(np.array([[0, 1], [1, 2]]), n_vertices=3)
        assert stream.n_edges == 2
        assert stream.n_vertices == 3

    def test_rejects_bad_array(self):
        with pytest.raises(StreamError):
            InMemoryEdgeStream(np.zeros((2, 3)))

    def test_rejects_bad_chunk_size(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        with pytest.raises(StreamError):
            list(stream.chunks(chunk_size=0))

    def test_stats_bytes(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        list(stream.chunks())
        assert stream.stats.bytes_read == toy_graph.n_edges * 8
        assert stream.stats.edges_read == toy_graph.n_edges

    def test_materialize(self, community_graph):
        stream = InMemoryEdgeStream(community_graph)
        g = stream.materialize()
        assert np.array_equal(g.edges, community_graph.edges)


class TestFileStream:
    @pytest.fixture
    def graph_file(self, tmp_path, powerlaw_graph):
        path = tmp_path / "g.bin"
        write_binary_edge_list(powerlaw_graph, path)
        return path

    def test_matches_source(self, graph_file, powerlaw_graph):
        stream = FileEdgeStream(graph_file)
        loaded = np.concatenate(list(stream.chunks(chunk_size=97)))
        assert np.array_equal(loaded, powerlaw_graph.edges)

    def test_knows_edge_count_without_reading(self, graph_file, powerlaw_graph):
        stream = FileEdgeStream(graph_file)
        assert stream.n_edges == powerlaw_graph.n_edges
        assert stream.stats.bytes_read == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamError):
            FileEdgeStream(tmp_path / "nope.bin")

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x01" * 12)
        with pytest.raises(StreamError):
            FileEdgeStream(path)

    def test_multiple_passes(self, graph_file, powerlaw_graph):
        stream = FileEdgeStream(graph_file)
        for _ in range(3):
            assert sum(c.shape[0] for c in stream.chunks()) == powerlaw_graph.n_edges
        assert stream.stats.passes == 3
        assert stream.stats.edges_read == 3 * powerlaw_graph.n_edges

    def test_device_charges_simulated_time(self, graph_file):
        device = ssd_device()
        stream = FileEdgeStream(graph_file, device=device)
        list(stream.chunks())
        expected = stream.stats.bytes_read / 938_000_000.0
        assert stream.stats.simulated_read_seconds == pytest.approx(expected)
        assert device.clock.elapsed == pytest.approx(expected)

    def test_rejects_bad_chunk_size(self, graph_file):
        with pytest.raises(StreamError):
            list(FileEdgeStream(graph_file).chunks(chunk_size=-1))


class TestPrefetchStream:
    """Double-buffered prefetching ``FileEdgeStream`` (out-of-core tier).

    The contract (see ``repro.streaming.stream``): a prefetching stream
    yields the identical chunk sequence, IOStats and device charges as
    the synchronous stream — accounting happens on the consumer side —
    and reader-thread failures surface in the consumer, not in a dead
    background thread.
    """

    @pytest.fixture
    def graph_file(self, tmp_path, powerlaw_graph):
        path = tmp_path / "pf.bin"
        write_binary_edge_list(powerlaw_graph, path)
        return path

    def test_chunks_match_sync(self, graph_file):
        sync = list(FileEdgeStream(graph_file).chunks(chunk_size=97))
        pre = list(
            FileEdgeStream(graph_file, prefetch=True).chunks(chunk_size=97)
        )
        assert len(pre) == len(sync)
        for a, b in zip(sync, pre):
            assert np.array_equal(a, b)

    def test_window_matches_sync(self, graph_file):
        sync = list(FileEdgeStream(graph_file).window(7, 301, chunk_size=13))
        pre = list(
            FileEdgeStream(graph_file, prefetch=True).window(
                7, 301, chunk_size=13
            )
        )
        assert len(pre) == len(sync)
        for a, b in zip(sync, pre):
            assert np.array_equal(a, b)

    def test_iostats_match_sync(self, graph_file):
        sync = FileEdgeStream(graph_file)
        pre = FileEdgeStream(graph_file, prefetch=True)
        for _ in range(2):
            list(sync.chunks(chunk_size=64))
            list(pre.chunks(chunk_size=64))
        assert pre.stats.passes == sync.stats.passes
        assert pre.stats.edges_read == sync.stats.edges_read
        assert pre.stats.bytes_read == sync.stats.bytes_read

    def test_device_charges_match_sync(self, graph_file):
        dev_sync = ssd_device()
        dev_pre = ssd_device()
        list(FileEdgeStream(graph_file, device=dev_sync).chunks())
        list(
            FileEdgeStream(graph_file, device=dev_pre, prefetch=True).chunks()
        )
        assert dev_pre.clock.elapsed == pytest.approx(dev_sync.clock.elapsed)
        assert dev_pre.clock.elapsed > 0

    def test_early_close_does_not_hang(self, graph_file):
        """Abandoning a pass mid-stream must stop and join the reader
        thread (generator ``finally``), leaving the stream reusable."""
        stream = FileEdgeStream(graph_file, prefetch=True)
        it = stream.chunks(chunk_size=8)
        next(it)
        it.close()
        total = sum(c.shape[0] for c in stream.chunks(chunk_size=64))
        assert total == stream.n_edges

    def test_reader_errors_propagate(self, tmp_path, powerlaw_graph):
        path = tmp_path / "trunc.bin"
        write_binary_edge_list(powerlaw_graph, path)
        stream = FileEdgeStream(path, prefetch=True)
        # Corrupt the file *after* construction-time validation: the
        # background reader hits the short read and the consumer must
        # re-raise its StreamError instead of ending the pass quietly.
        with open(path, "r+b") as fh:
            fh.truncate(powerlaw_graph.n_edges * 8 - 4)
        with pytest.raises(StreamError, match="truncated"):
            list(stream.chunks(chunk_size=32))

    def test_spec_round_trip_carries_prefetch(self, graph_file, powerlaw_graph):
        import pickle

        stream = FileEdgeStream(graph_file, prefetch=True)
        spec, segment = make_stream_spec(stream)
        assert segment is None
        reopened = pickle.loads(pickle.dumps(spec)).open()
        assert reopened.prefetch is True
        assert np.array_equal(
            np.concatenate(list(reopened.chunks())), powerlaw_graph.edges
        )


class TestAsStream:
    def test_graph_coerced(self, toy_graph):
        stream = as_stream(toy_graph)
        assert stream.n_edges == toy_graph.n_edges

    def test_stream_passthrough(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        assert as_stream(stream) is stream


class TestDegreesFromStream:
    def test_matches_in_memory(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        deg = compute_degrees_from_stream(stream)
        assert np.array_equal(deg, compute_degrees(powerlaw_graph))

    def test_grows_without_hint(self):
        stream = InMemoryEdgeStream(np.array([[0, 9]]))
        deg = compute_degrees_from_stream(stream)
        assert deg.shape[0] >= 10
        assert deg[0] == 1
        assert deg[9] == 1

    def test_respects_hint(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        deg = compute_degrees_from_stream(stream, n_vertices=8)
        assert deg.shape == (8,)

    def test_from_file(self, tmp_path, community_graph):
        path = tmp_path / "g.bin"
        write_binary_edge_list(community_graph, path)
        deg = compute_degrees_from_stream(FileEdgeStream(path))
        assert deg.sum() == 2 * community_graph.n_edges


class TestShardWindows:
    """The shard-window iterator behind the parallel partitioner."""

    @pytest.fixture
    def graph_file(self, tmp_path, powerlaw_graph):
        path = tmp_path / "g.bin"
        write_binary_edge_list(powerlaw_graph, path)
        return path

    @pytest.mark.parametrize("bounds", [(0, 10), (5, 5), (0, 0), (7, 4000)])
    def test_in_memory_window_matches_slice(self, powerlaw_graph, bounds):
        start, stop = bounds
        stream = InMemoryEdgeStream(powerlaw_graph)
        parts = list(stream.window(start, stop, chunk_size=13))
        collected = (
            np.concatenate(parts)
            if parts
            else np.empty((0, 2), dtype=np.int64)
        )
        assert np.array_equal(collected, powerlaw_graph.edges[start:stop])

    @pytest.mark.parametrize("bounds", [(0, 10), (5, 5), (7, 4000)])
    def test_file_window_matches_slice(self, graph_file, powerlaw_graph, bounds):
        start, stop = bounds
        stream = FileEdgeStream(graph_file)
        parts = list(stream.window(start, stop, chunk_size=13))
        collected = (
            np.concatenate(parts)
            if parts
            else np.empty((0, 2), dtype=np.int64)
        )
        assert np.array_equal(collected, powerlaw_graph.edges[start:stop])

    def test_base_class_window_replays_chunks(self, powerlaw_graph):
        """A stream without random access still windows correctly."""
        from repro.streaming import EdgeStream

        inner = InMemoryEdgeStream(powerlaw_graph)

        class OpaqueStream(EdgeStream):
            @property
            def n_edges(self):
                return inner.n_edges

            @property
            def n_vertices(self):
                return inner.n_vertices

            def chunks(self, chunk_size=None):
                return inner.chunks(chunk_size)

        stream = OpaqueStream()
        collected = np.concatenate(list(stream.window(11, 222, chunk_size=17)))
        assert np.array_equal(collected, powerlaw_graph.edges[11:222])

    def test_windows_cover_stream_exactly(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        m = stream.n_edges
        cuts = [0, m // 3, m // 2, m]
        parts = []
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            parts.extend(stream.window(lo, hi))
        assert np.array_equal(np.concatenate(parts), powerlaw_graph.edges)

    def test_interleaved_windows_are_independent(self, graph_file, powerlaw_graph):
        """Concurrent shard readers do not disturb each other."""
        stream = FileEdgeStream(graph_file)
        m = stream.n_edges
        half = m // 2
        a = stream.window(0, half, chunk_size=19)
        b = stream.window(half, m, chunk_size=23)
        parts_a, parts_b = [], []
        exhausted_a = exhausted_b = False
        while not (exhausted_a and exhausted_b):
            chunk = next(a, None)
            if chunk is None:
                exhausted_a = True
            else:
                parts_a.append(chunk)
            chunk = next(b, None)
            if chunk is None:
                exhausted_b = True
            else:
                parts_b.append(chunk)
        collected = np.concatenate(parts_a + parts_b)
        assert np.array_equal(collected, powerlaw_graph.edges)

    def test_window_respects_default_chunk_size(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        stream.default_chunk_size = 11
        sizes = [c.shape[0] for c in stream.window(0, 100)]
        assert max(sizes) <= 11

    @pytest.mark.parametrize("bounds", [(-1, 5), (5, 3), (0, 10**9)])
    def test_invalid_window_rejected(self, powerlaw_graph, bounds):
        stream = InMemoryEdgeStream(powerlaw_graph)
        with pytest.raises(StreamError):
            stream.window(*bounds)

    def test_file_window_charges_device(self, graph_file):
        device = ssd_device()
        stream = FileEdgeStream(graph_file, device=device)
        list(stream.window(0, 50, chunk_size=10))
        assert stream.stats.simulated_read_seconds > 0


class TestStreamSpecs:
    """Picklable stream specs: reopen the same edges in another process."""

    @pytest.fixture
    def graph_file(self, tmp_path, powerlaw_graph):
        path = tmp_path / "spec.bin"
        write_binary_edge_list(powerlaw_graph, path)
        return path

    def test_file_spec_round_trip(self, graph_file, powerlaw_graph):
        import pickle

        stream = FileEdgeStream(graph_file, n_vertices=powerlaw_graph.n_vertices)
        stream.default_chunk_size = 33
        spec, segment = make_stream_spec(stream)
        assert segment is None  # file-backed: nothing to own
        reopened = pickle.loads(pickle.dumps(spec)).open()
        assert isinstance(reopened, FileEdgeStream)
        assert reopened.default_chunk_size == 33
        assert reopened.n_vertices == powerlaw_graph.n_vertices
        assert np.array_equal(
            np.concatenate(list(reopened.chunks())), powerlaw_graph.edges
        )

    def test_in_memory_spec_ships_array_via_shared_memory(self, powerlaw_graph):
        import pickle

        stream = InMemoryEdgeStream(powerlaw_graph)
        spec, segment = make_stream_spec(stream)
        try:
            assert segment is not None
            reopened = pickle.loads(pickle.dumps(spec)).open()
            assert np.array_equal(
                np.concatenate(list(reopened.chunks())), powerlaw_graph.edges
            )
            # windows work against the shared mapping too
            window = np.concatenate(list(reopened.window(5, 105)))
            assert np.array_equal(window, powerlaw_graph.edges[5:105])
            del reopened  # drop the attachment before the owner unlinks
        finally:
            segment.close()
            segment.unlink()

    def test_generic_stream_is_snapshotted(self, powerlaw_graph):
        class OpaqueStream(EdgeStream):
            """No random access: only the chunks() protocol."""

            @property
            def n_edges(self):
                return powerlaw_graph.n_edges

            @property
            def n_vertices(self):
                return powerlaw_graph.n_vertices

            def chunks(self, chunk_size=None):
                yield from InMemoryEdgeStream(powerlaw_graph).chunks(chunk_size)

        spec, segment = make_stream_spec(OpaqueStream())
        try:
            reopened = spec.open()
            assert np.array_equal(
                np.concatenate(list(reopened.chunks())), powerlaw_graph.edges
            )
            del reopened
        finally:
            segment.close()
            segment.unlink()


class TestAutoChunkSize:
    """Bounds of the |V|/k/cache-budget heuristic (ISSUE 3 satellite)."""

    @pytest.mark.parametrize("n", [None, 10, 1000, 10**6, 10**9])
    @pytest.mark.parametrize("k", [2, 8, 32, 256, 4096])
    def test_always_within_bounds(self, n, k):
        chunk = auto_chunk_size(n, k)
        assert AUTO_CHUNK_MIN <= chunk <= AUTO_CHUNK_MAX

    def test_monotone_non_increasing_in_k(self):
        chunks = [auto_chunk_size(10**6, k) for k in (2, 4, 16, 64, 256, 1024)]
        assert chunks == sorted(chunks, reverse=True)

    def test_small_vertex_sets_shrink_the_chunk(self):
        assert auto_chunk_size(10, 8) == AUTO_CHUNK_MIN
        assert auto_chunk_size(10**6, 8) > auto_chunk_size(2000, 8)

    def test_budget_model_at_moderate_k(self):
        # budget // (fixed + 8k), uncapped by |V| for a large graph
        from repro.streaming.stream import (
            AUTO_CHUNK_CACHE_BUDGET,
            AUTO_CHUNK_EDGE_BYTES,
        )

        expected = AUTO_CHUNK_CACHE_BUDGET // (AUTO_CHUNK_EDGE_BYTES + 8 * 32)
        assert auto_chunk_size(10**9, 32) == expected

    def test_none_vertices_skips_the_cap(self):
        assert auto_chunk_size(None, 8) == auto_chunk_size(10**9, 8)

    def test_zero_vertices_is_a_hint_not_no_hint(self):
        """Regression (ISSUE 7 satellite): ``n_vertices=0`` used to fall
        through a truthiness check and skip the ``4 * |V|`` cap, sizing
        a degenerate stream's chunks like an unhinted one."""
        assert auto_chunk_size(0, 8) == AUTO_CHUNK_MIN
        assert auto_chunk_size(0, 8) != auto_chunk_size(None, 8)

    def test_tiny_vertex_counts_take_the_cap(self):
        assert auto_chunk_size(1, 8) == AUTO_CHUNK_MIN  # 4*1, clamped up
        assert auto_chunk_size(2000, 8) == 4 * 2000

    def test_k_coerced_to_at_least_one(self):
        """``k <= 1`` sizes like ``k=1`` — pure budget, no crash
        (ISSUE 8 satellite)."""
        from repro.streaming.stream import (
            AUTO_CHUNK_CACHE_BUDGET,
            AUTO_CHUNK_EDGE_BYTES,
        )

        expected = AUTO_CHUNK_CACHE_BUDGET // (AUTO_CHUNK_EDGE_BYTES + 8)
        assert auto_chunk_size(None, 1) == expected
        assert auto_chunk_size(None, 0) == expected
        assert auto_chunk_size(None, -3) == expected

    def test_huge_k_budget_underflow_lands_on_min(self):
        """A ``k`` large enough that the budget division underflows to 0
        must land on the MIN clamp, not return 0 (ISSUE 8 satellite)."""
        huge_k = 1 << 21  # per-edge bytes > the whole cache budget
        assert auto_chunk_size(None, huge_k) == AUTO_CHUNK_MIN
        assert auto_chunk_size(10**9, huge_k) == AUTO_CHUNK_MIN

    def test_partition_accepts_auto(self, powerlaw_graph):
        from repro.core import TwoPhasePartitioner

        auto = TwoPhasePartitioner().partition(powerlaw_graph, 4, chunk_size="auto")
        explicit = TwoPhasePartitioner().partition(
            powerlaw_graph, 4,
            chunk_size=auto_chunk_size(powerlaw_graph.n_vertices, 4),
        )
        assert np.array_equal(auto.assignments, explicit.assignments)
        assert auto.cost == explicit.cost

    def test_partition_rejects_other_strings(self, powerlaw_graph):
        from repro.core import TwoPhasePartitioner
        from repro.errors import PartitioningError

        with pytest.raises(PartitioningError, match="auto"):
            TwoPhasePartitioner().partition(
                powerlaw_graph, 4, chunk_size="huge"
            )
