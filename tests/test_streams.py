"""Unit tests for edge streams (in-memory, file-backed) and I/O stats."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph import Graph
from repro.graph.degrees import compute_degrees, compute_degrees_from_stream
from repro.graph.formats import write_binary_edge_list
from repro.storage import ssd_device
from repro.streaming import FileEdgeStream, InMemoryEdgeStream
from repro.streaming.stream import as_stream


class TestInMemoryStream:
    def test_full_pass_covers_all_edges(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        total = sum(chunk.shape[0] for chunk in stream.chunks(chunk_size=64))
        assert total == powerlaw_graph.n_edges

    def test_chunks_preserve_order(self):
        g = Graph([(i, i + 1) for i in range(100)])
        stream = InMemoryEdgeStream(g)
        collected = np.concatenate(list(stream.chunks(chunk_size=7)))
        assert np.array_equal(collected, g.edges)

    def test_reiterable(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        first = sum(c.shape[0] for c in stream.chunks())
        second = sum(c.shape[0] for c in stream.chunks())
        assert first == second == powerlaw_graph.n_edges
        assert stream.stats.passes == 2

    def test_edges_iterator(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        assert list(stream.edges()) == [tuple(e) for e in toy_graph.edges.tolist()]

    def test_from_bare_array(self):
        stream = InMemoryEdgeStream(np.array([[0, 1], [1, 2]]), n_vertices=3)
        assert stream.n_edges == 2
        assert stream.n_vertices == 3

    def test_rejects_bad_array(self):
        with pytest.raises(StreamError):
            InMemoryEdgeStream(np.zeros((2, 3)))

    def test_rejects_bad_chunk_size(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        with pytest.raises(StreamError):
            list(stream.chunks(chunk_size=0))

    def test_stats_bytes(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        list(stream.chunks())
        assert stream.stats.bytes_read == toy_graph.n_edges * 8
        assert stream.stats.edges_read == toy_graph.n_edges

    def test_materialize(self, community_graph):
        stream = InMemoryEdgeStream(community_graph)
        g = stream.materialize()
        assert np.array_equal(g.edges, community_graph.edges)


class TestFileStream:
    @pytest.fixture
    def graph_file(self, tmp_path, powerlaw_graph):
        path = tmp_path / "g.bin"
        write_binary_edge_list(powerlaw_graph, path)
        return path

    def test_matches_source(self, graph_file, powerlaw_graph):
        stream = FileEdgeStream(graph_file)
        loaded = np.concatenate(list(stream.chunks(chunk_size=97)))
        assert np.array_equal(loaded, powerlaw_graph.edges)

    def test_knows_edge_count_without_reading(self, graph_file, powerlaw_graph):
        stream = FileEdgeStream(graph_file)
        assert stream.n_edges == powerlaw_graph.n_edges
        assert stream.stats.bytes_read == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamError):
            FileEdgeStream(tmp_path / "nope.bin")

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x01" * 12)
        with pytest.raises(StreamError):
            FileEdgeStream(path)

    def test_multiple_passes(self, graph_file, powerlaw_graph):
        stream = FileEdgeStream(graph_file)
        for _ in range(3):
            assert sum(c.shape[0] for c in stream.chunks()) == powerlaw_graph.n_edges
        assert stream.stats.passes == 3
        assert stream.stats.edges_read == 3 * powerlaw_graph.n_edges

    def test_device_charges_simulated_time(self, graph_file):
        device = ssd_device()
        stream = FileEdgeStream(graph_file, device=device)
        list(stream.chunks())
        expected = stream.stats.bytes_read / 938_000_000.0
        assert stream.stats.simulated_read_seconds == pytest.approx(expected)
        assert device.clock.elapsed == pytest.approx(expected)

    def test_rejects_bad_chunk_size(self, graph_file):
        with pytest.raises(StreamError):
            list(FileEdgeStream(graph_file).chunks(chunk_size=-1))


class TestAsStream:
    def test_graph_coerced(self, toy_graph):
        stream = as_stream(toy_graph)
        assert stream.n_edges == toy_graph.n_edges

    def test_stream_passthrough(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        assert as_stream(stream) is stream


class TestDegreesFromStream:
    def test_matches_in_memory(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        deg = compute_degrees_from_stream(stream)
        assert np.array_equal(deg, compute_degrees(powerlaw_graph))

    def test_grows_without_hint(self):
        stream = InMemoryEdgeStream(np.array([[0, 9]]))
        deg = compute_degrees_from_stream(stream)
        assert deg.shape[0] >= 10
        assert deg[0] == 1
        assert deg[9] == 1

    def test_respects_hint(self, toy_graph):
        stream = InMemoryEdgeStream(toy_graph)
        deg = compute_degrees_from_stream(stream, n_vertices=8)
        assert deg.shape == (8,)

    def test_from_file(self, tmp_path, community_graph):
        path = tmp_path / "g.bin"
        write_binary_edge_list(community_graph, path)
        deg = compute_degrees_from_stream(FileEdgeStream(path))
        assert deg.sum() == 2 * community_graph.n_edges


class TestShardWindows:
    """The shard-window iterator behind the parallel partitioner."""

    @pytest.fixture
    def graph_file(self, tmp_path, powerlaw_graph):
        path = tmp_path / "g.bin"
        write_binary_edge_list(powerlaw_graph, path)
        return path

    @pytest.mark.parametrize("bounds", [(0, 10), (5, 5), (0, 0), (7, 4000)])
    def test_in_memory_window_matches_slice(self, powerlaw_graph, bounds):
        start, stop = bounds
        stream = InMemoryEdgeStream(powerlaw_graph)
        parts = list(stream.window(start, stop, chunk_size=13))
        collected = (
            np.concatenate(parts)
            if parts
            else np.empty((0, 2), dtype=np.int64)
        )
        assert np.array_equal(collected, powerlaw_graph.edges[start:stop])

    @pytest.mark.parametrize("bounds", [(0, 10), (5, 5), (7, 4000)])
    def test_file_window_matches_slice(self, graph_file, powerlaw_graph, bounds):
        start, stop = bounds
        stream = FileEdgeStream(graph_file)
        parts = list(stream.window(start, stop, chunk_size=13))
        collected = (
            np.concatenate(parts)
            if parts
            else np.empty((0, 2), dtype=np.int64)
        )
        assert np.array_equal(collected, powerlaw_graph.edges[start:stop])

    def test_base_class_window_replays_chunks(self, powerlaw_graph):
        """A stream without random access still windows correctly."""
        from repro.streaming import EdgeStream

        inner = InMemoryEdgeStream(powerlaw_graph)

        class OpaqueStream(EdgeStream):
            @property
            def n_edges(self):
                return inner.n_edges

            @property
            def n_vertices(self):
                return inner.n_vertices

            def chunks(self, chunk_size=None):
                return inner.chunks(chunk_size)

        stream = OpaqueStream()
        collected = np.concatenate(list(stream.window(11, 222, chunk_size=17)))
        assert np.array_equal(collected, powerlaw_graph.edges[11:222])

    def test_windows_cover_stream_exactly(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        m = stream.n_edges
        cuts = [0, m // 3, m // 2, m]
        parts = []
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            parts.extend(stream.window(lo, hi))
        assert np.array_equal(np.concatenate(parts), powerlaw_graph.edges)

    def test_interleaved_windows_are_independent(self, graph_file, powerlaw_graph):
        """Concurrent shard readers do not disturb each other."""
        stream = FileEdgeStream(graph_file)
        m = stream.n_edges
        half = m // 2
        a = stream.window(0, half, chunk_size=19)
        b = stream.window(half, m, chunk_size=23)
        parts_a, parts_b = [], []
        exhausted_a = exhausted_b = False
        while not (exhausted_a and exhausted_b):
            chunk = next(a, None)
            if chunk is None:
                exhausted_a = True
            else:
                parts_a.append(chunk)
            chunk = next(b, None)
            if chunk is None:
                exhausted_b = True
            else:
                parts_b.append(chunk)
        collected = np.concatenate(parts_a + parts_b)
        assert np.array_equal(collected, powerlaw_graph.edges)

    def test_window_respects_default_chunk_size(self, powerlaw_graph):
        stream = InMemoryEdgeStream(powerlaw_graph)
        stream.default_chunk_size = 11
        sizes = [c.shape[0] for c in stream.window(0, 100)]
        assert max(sizes) <= 11

    @pytest.mark.parametrize("bounds", [(-1, 5), (5, 3), (0, 10**9)])
    def test_invalid_window_rejected(self, powerlaw_graph, bounds):
        stream = InMemoryEdgeStream(powerlaw_graph)
        with pytest.raises(StreamError):
            stream.window(*bounds)

    def test_file_window_charges_device(self, graph_file):
        device = ssd_device()
        stream = FileEdgeStream(graph_file, device=device)
        list(stream.window(0, 50, chunk_size=10))
        assert stream.stats.simulated_read_seconds > 0
