"""Edge-case robustness across every partitioner.

Degenerate inputs a production partitioner must survive: fewer edges than
partitions, self-loops, duplicate (multigraph) edges, single-edge graphs,
long paths, hubs, and isolated vertices — plus stream-order and seed
stability checks.
"""

import numpy as np
import pytest

from repro.core import TwoPhasePartitioner
from repro.graph import Graph
from repro.metrics import validate_partition
from repro.streaming.order import degree_sorted_order, shuffled_copy

from tests.conftest import ALL_PARTITIONER_FACTORIES

CASES = {
    "fewer-edges-than-partitions": (Graph([(0, 1), (1, 2), (2, 3)], 4), 8),
    "self-loops": (Graph([(0, 0), (1, 1), (0, 1), (2, 2)], 3), 2),
    "all-duplicates": (Graph([(0, 1)] * 12, 2), 4),
    "single-edge": (Graph([(0, 1)], 2), 2),
    "path-graph": (Graph([(i, i + 1) for i in range(20)], 21), 4),
    "isolated-vertices": (Graph([(0, 1), (2, 3)], 100), 2),
}


@pytest.mark.parametrize("name", sorted(ALL_PARTITIONER_FACTORIES))
@pytest.mark.parametrize("case", sorted(CASES))
def test_degenerate_inputs(name, case):
    graph, k = CASES[case]
    result = ALL_PARTITIONER_FACTORIES[name]().partition(graph, k)
    validate_partition(graph.edges, result.assignments, k)
    assert result.replication_factor >= 1.0


class TestSelfLoopSemantics:
    def test_self_loop_single_replica(self):
        graph = Graph([(5, 5)], 6)
        result = TwoPhasePartitioner().partition(graph, 2)
        assert result.state.replica_counts()[5] == 1
        assert result.replication_factor == 1.0

    def test_duplicates_colocate_under_2psl(self):
        """Duplicates of one edge are always pre-partitioned together
        (same clusters) until the cap forces spill."""
        graph = Graph([(0, 1)] * 8 + [(2, 3)] * 8, 4)
        result = TwoPhasePartitioner().partition(graph, 2)
        # Cap is 8, so each duplicate group fits one partition.
        first = set(result.assignments[:8].tolist())
        second = set(result.assignments[8:].tolist())
        assert len(first) == 1
        assert len(second) == 1


class TestOrderSensitivity:
    def test_2psl_quality_stable_under_shuffle(self, social_graph):
        base = TwoPhasePartitioner().partition(social_graph, 8)
        shuffled = TwoPhasePartitioner().partition(
            shuffled_copy(social_graph, seed=9), 8
        )
        assert shuffled.replication_factor < base.replication_factor * 1.35

    def test_2psl_quality_stable_under_adversarial_order(self, social_graph):
        """Degree-descending order front-loads the hubs — the hard case
        for streaming algorithms."""
        adversarial = TwoPhasePartitioner().partition(
            degree_sorted_order(social_graph, descending=True), 8
        )
        base = TwoPhasePartitioner().partition(social_graph, 8)
        assert adversarial.replication_factor < base.replication_factor * 1.5

    def test_balance_holds_in_any_order(self, social_graph):
        for variant in (
            social_graph,
            shuffled_copy(social_graph, seed=2),
            degree_sorted_order(social_graph),
        ):
            result = TwoPhasePartitioner().partition(variant, 8)
            assert result.measured_alpha <= 1.0500001 + 8 / variant.n_edges


class TestSeedStability:
    def test_dataset_seed_changes_graph_not_contract(self):
        from repro.graph.datasets import load_dataset

        rfs = []
        for seed in (7, 8, 9):
            graph = load_dataset("OK", scale=0.05, seed=seed)
            result = TwoPhasePartitioner().partition(graph, 8)
            validate_partition(graph.edges, result.assignments, 8, alpha=1.05)
            rfs.append(result.replication_factor)
        # Quality is stable across generator seeds (within 25 %).
        assert max(rfs) / min(rfs) < 1.25

    def test_hash_seed_changes_fallback_only(self, community_graph):
        a = TwoPhasePartitioner(hash_seed=0).partition(community_graph, 8)
        b = TwoPhasePartitioner(hash_seed=1).partition(community_graph, 8)
        # The scored path is deterministic; only hash fallbacks may differ.
        differing = (a.assignments != b.assignments).mean()
        assert differing < 0.2


class TestAlphaSweep:
    @pytest.mark.parametrize("alpha", [1.0, 1.01, 1.05, 1.5, 4.0])
    def test_2psl_respects_any_alpha(self, powerlaw_graph, alpha):
        result = TwoPhasePartitioner().partition(powerlaw_graph, 8, alpha=alpha)
        cap = result.state.capacity
        assert result.sizes.max() <= cap

    def test_looser_alpha_cannot_hurt_quality_much(self, powerlaw_graph):
        tight = TwoPhasePartitioner().partition(powerlaw_graph, 8, alpha=1.0)
        loose = TwoPhasePartitioner().partition(powerlaw_graph, 8, alpha=2.0)
        # With more slack, fewer forced fallbacks: quality same or better.
        assert loose.replication_factor <= tight.replication_factor * 1.1

    def test_alpha_one_is_perfectly_balanced(self, powerlaw_graph):
        result = TwoPhasePartitioner().partition(powerlaw_graph, 8, alpha=1.0)
        sizes = result.sizes
        assert sizes.max() - sizes.min() <= 1 or sizes.max() <= np.ceil(
            powerlaw_graph.n_edges / 8
        )


class TestLargeK:
    def test_k_equals_edge_count(self):
        graph = Graph([(i, i + 1) for i in range(16)], 17)
        result = TwoPhasePartitioner().partition(graph, 16)
        validate_partition(graph.edges, result.assignments, 16)
        assert result.sizes.max() == 1

    def test_k_larger_than_vertices(self, toy_graph):
        result = TwoPhasePartitioner().partition(toy_graph, 12)
        validate_partition(toy_graph.edges, result.assignments, 12)
