"""Differential-equivalence suite for the kernel-routed parallel path.

Four contracts are pinned here:

1. ``ParallelTwoPhase(n_workers=1)`` is **bit-exact** with the sequential
   ``TwoPhasePartitioner`` — identical per-edge assignments, replica
   bits, partition sizes *and* cost counters — for any sync interval,
   chunk size, k, alpha, mode and backend.  A single worker's state view
   is never stale, and window boundaries are ordinary chunk boundaries,
   which the kernel contract makes semantics-free.
2. Kernel backends stay bit-exact with each other *through the parallel
   path* (stale views, barrier merges and all), for any worker count.
3. Streaming the same graph from memory or from disk
   (``InMemoryEdgeStream`` vs ``FileEdgeStream``) yields identical
   results for every kernel-routed partitioner — this is what catches
   chunk-boundary bugs in the shard-window iterator.
4. The execution **runner matrix** (``TestRunnerMatrix``): the true
   multi-process ``ProcessRunner`` is bit-identical with the
   single-process ``SimulatedRunner`` under the same sync schedule, the
   ``SerialRunner`` is bit-exact with the sequential pipeline, and a
   crashed or hung worker never leaks a shared-memory segment (the
   parent unlinks every segment it created on both success and error
   paths, which also unregisters them from the shared
   ``resource_tracker`` — so no "leaked shared_memory objects" warnings
   can fire at interpreter shutdown).

The parallel path must also honor the out-of-core promise: it never
materializes the stream, and worker windows bound its memory.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ParallelTwoPhase, ProcessRunner, TwoPhasePartitioner
from repro.core import runners as runners_module
from repro.core.runners import live_shared_segments
from repro.errors import ConfigurationError, PartitioningError
from repro.graph import Graph
from repro.graph.formats import write_binary_edge_list
from repro.kernels import NumpyBackend, available_backends, register_backend
from repro.streaming import FileEdgeStream, InMemoryEdgeStream

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

VECTOR_BACKENDS = [n for n in available_backends() if n != "python"]

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=50, max_edges=250):
    """Random non-empty multigraphs (self-loops and duplicates allowed)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return Graph(rng.integers(0, n, size=(m, 2)), n)


def assert_bit_exact(reference, other):
    """Byte-identical assignments, replicas, sizes and cost counters."""
    np.testing.assert_array_equal(reference.assignments, other.assignments)
    np.testing.assert_array_equal(reference.state.sizes, other.state.sizes)
    np.testing.assert_array_equal(
        reference.state.replicas, other.state.replicas
    )
    assert reference.cost == other.cost


@pytest.mark.parametrize("backend", available_backends())
class TestSingleWorkerIsSequential:
    @SLOW
    @given(
        graph=graphs(),
        k=st.integers(min_value=2, max_value=10),
        alpha=st.sampled_from([1.0, 1.05, 1.5]),
        chunk_size=st.sampled_from([1, 7, 64, 500]),
        sync_interval=st.sampled_from([1, 13, 10**9]),
        parallel_phase1=st.booleans(),
    )
    def test_2psl_bit_exact(
        self, backend, graph, k, alpha, chunk_size, sync_interval,
        parallel_phase1,
    ):
        seq = TwoPhasePartitioner(backend=backend).partition(
            graph, k, alpha=alpha, chunk_size=chunk_size
        )
        par = ParallelTwoPhase(
            n_workers=1,
            sync_interval=sync_interval,
            backend=backend,
            parallel_phase1=parallel_phase1,
        ).partition(graph, k, alpha=alpha, chunk_size=chunk_size)
        assert_bit_exact(seq, par)
        assert seq.extras["prepartitioned_edges"] == (
            par.extras["prepartitioned_edges"]
        )

    @SLOW
    @given(
        graph=graphs(max_edges=150),
        k=st.integers(min_value=2, max_value=8),
        chunk_size=st.sampled_from([1, 7, 64, 500]),
    )
    def test_2pshdrf_bit_exact(self, backend, graph, k, chunk_size):
        seq = TwoPhasePartitioner(backend=backend, mode="hdrf").partition(
            graph, k, chunk_size=chunk_size
        )
        par = ParallelTwoPhase(
            n_workers=1, sync_interval=1, mode="hdrf", backend=backend
        ).partition(graph, k, chunk_size=chunk_size)
        assert_bit_exact(seq, par)

    def test_sync_interval_one_explicit(self, backend, community_graph):
        """The ISSUE's headline case: n_workers=1, sync_interval=1."""
        seq = TwoPhasePartitioner(backend=backend).partition(
            community_graph, 8
        )
        par = ParallelTwoPhase(
            n_workers=1, sync_interval=1, backend=backend
        ).partition(community_graph, 8)
        assert_bit_exact(seq, par)


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
class TestParallelBackendEquivalence:
    @SLOW
    @given(
        graph=graphs(),
        k=st.integers(min_value=2, max_value=10),
        n_workers=st.integers(min_value=2, max_value=5),
        sync_interval=st.sampled_from([1, 17, 256]),
        mode=st.sampled_from(["linear", "hdrf"]),
        parallel_phase1=st.booleans(),
    )
    def test_backends_agree_through_stale_merges(
        self, backend, graph, k, n_workers, sync_interval, mode,
        parallel_phase1,
    ):
        ref = ParallelTwoPhase(
            n_workers=n_workers,
            sync_interval=sync_interval,
            mode=mode,
            backend="python",
            parallel_phase1=parallel_phase1,
        ).partition(graph, k)
        out = ParallelTwoPhase(
            n_workers=n_workers,
            sync_interval=sync_interval,
            mode=mode,
            backend=backend,
            parallel_phase1=parallel_phase1,
        ).partition(graph, k)
        assert_bit_exact(ref, out)
        assert ref.extras["phase1_syncs"] == out.extras["phase1_syncs"]
        assert ref.extras["n_clusters"] == out.extras["n_clusters"]


class TestStreamSourceParity:
    """FileEdgeStream vs InMemoryEdgeStream: identical kernel results."""

    PARTITIONERS = {
        "2PS-L": lambda: TwoPhasePartitioner(),
        "2PS-HDRF": lambda: TwoPhasePartitioner(mode="hdrf"),
        "2PS-L-parallel": lambda: ParallelTwoPhase(
            n_workers=4, sync_interval=17
        ),
    }

    @pytest.fixture(scope="class")
    def graph_file(self, tmp_path_factory, community_graph):
        path = tmp_path_factory.mktemp("parity") / "g.bin"
        write_binary_edge_list(community_graph, path)
        return path

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("chunk_size", [64, 4096])
    def test_file_matches_memory(
        self, name, backend, chunk_size, graph_file, community_graph
    ):
        make = self.PARTITIONERS[name]
        in_mem = make()
        in_mem.backend = backend
        from_file = make()
        from_file.backend = backend
        a = in_mem.partition(
            InMemoryEdgeStream(community_graph), 8, chunk_size=chunk_size
        )
        b = from_file.partition(
            FileEdgeStream(graph_file, n_vertices=community_graph.n_vertices),
            8,
            chunk_size=chunk_size,
        )
        assert_bit_exact(a, b)

    def test_odd_chunk_boundaries(self, graph_file, community_graph):
        """Chunk sizes that never align with shard or window bounds."""
        for chunk_size in (1, 3, 61):
            a = ParallelTwoPhase(n_workers=3, sync_interval=7).partition(
                InMemoryEdgeStream(community_graph), 4, chunk_size=chunk_size
            )
            b = ParallelTwoPhase(n_workers=3, sync_interval=7).partition(
                FileEdgeStream(
                    graph_file, n_vertices=community_graph.n_vertices
                ),
                4,
                chunk_size=chunk_size,
            )
            assert_bit_exact(a, b)


class TestRunnerMatrix:
    """ProcessRunner vs SimulatedRunner vs sequential, across the full
    {stream source} x {backend} x {mode} matrix (ISSUE 3 satellite)."""

    @pytest.fixture(scope="class")
    def graph_file(self, tmp_path_factory, community_graph):
        path = tmp_path_factory.mktemp("runners") / "g.bin"
        write_binary_edge_list(community_graph, path)
        return path

    def _stream(self, source, graph_file, community_graph):
        if source == "file":
            return FileEdgeStream(
                graph_file, n_vertices=community_graph.n_vertices
            )
        return InMemoryEdgeStream(community_graph)

    @pytest.mark.parametrize("source", ["memory", "file"])
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("mode", ["linear", "hdrf"])
    @pytest.mark.parametrize("parallel_phase1", [False, True])
    def test_process_matches_simulated(
        self, source, backend, mode, parallel_phase1, graph_file,
        community_graph,
    ):
        def run(runner):
            return ParallelTwoPhase(
                n_workers=3,
                sync_interval=17,
                mode=mode,
                backend=backend,
                runner=runner,
                parallel_phase1=parallel_phase1,
            ).partition(
                self._stream(source, graph_file, community_graph),
                4,
                chunk_size=61,
            )

        simulated = run("simulated")
        process = run("process")
        assert_bit_exact(simulated, process)
        assert simulated.extras["syncs"] == process.extras["syncs"]
        assert (
            simulated.extras["phase1_syncs"]
            == process.extras["phase1_syncs"]
        )
        assert process.extras["runner"] == "process"
        assert process.extras["measured_wallclock"]
        if parallel_phase1:
            assert process.extras["phase1_syncs"] > 0
        assert not live_shared_segments()

    @pytest.mark.parametrize("source", ["memory", "file"])
    @pytest.mark.parametrize("mode", ["linear", "hdrf"])
    @pytest.mark.parametrize("parallel_phase1", [False, True])
    def test_single_process_worker_matches_sequential(
        self, source, mode, parallel_phase1, graph_file, community_graph
    ):
        seq = TwoPhasePartitioner(mode=mode).partition(
            self._stream(source, graph_file, community_graph), 4
        )
        par = ParallelTwoPhase(
            n_workers=1,
            sync_interval=13,
            mode=mode,
            runner="process",
            parallel_phase1=parallel_phase1,
        ).partition(self._stream(source, graph_file, community_graph), 4)
        assert_bit_exact(seq, par)

    def test_delta_barriers_shrink_broadcast_volume(self, community_graph):
        """The dirty-row barriers must merge strictly fewer replica rows
        than a full re-broadcast on a graph larger than one window."""
        result = ParallelTwoPhase(n_workers=4, sync_interval=32).partition(
            community_graph, 8
        )
        assert result.extras["barrier_bytes_full"] > 0
        assert (
            0
            < result.extras["barrier_bytes"]
            < result.extras["barrier_bytes_full"]
        )

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_serial_runner_is_sequential(self, n_workers, community_graph):
        """SerialRunner ignores sharding entirely: bit-exact with the
        sequential pipeline for any configured worker count."""
        seq = TwoPhasePartitioner().partition(community_graph, 4)
        ser = ParallelTwoPhase(
            n_workers=n_workers, sync_interval=13, runner="serial"
        ).partition(community_graph, 4)
        assert_bit_exact(seq, ser)
        assert ser.extras["syncs"] == 0

    def test_overshot_stale_view_with_untouched_partition(self):
        """Regression: a stale worker view whose *other* partition overshot
        the cap used to crash the numpy pre-partition spill (it assumed at
        least one edge of the block was cap-unsafe)."""
        g = Graph(np.array([[1, 1], [1, 1], [1, 1], [1, 0], [0, 0]]), 2)
        ref = ParallelTwoPhase(
            n_workers=4, sync_interval=1, backend="python"
        ).partition(g, 3)
        out = ParallelTwoPhase(
            n_workers=4, sync_interval=1, backend="numpy"
        ).partition(g, 3)
        assert_bit_exact(ref, out)

    def test_unknown_runner_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown runner"):
            ParallelTwoPhase(runner="threads")

    def test_bad_process_options_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessRunner(start_method="no-such-method")
        with pytest.raises(ConfigurationError):
            ProcessRunner(task_timeout=0.0)


class _ExplodingBackend(NumpyBackend):
    """Raises inside the worker after Phase 1 — exercises crash cleanup."""

    name = "exploding"

    def prepartition_pass(self, stream, ctx):
        raise RuntimeError("worker kernel exploded")


class _ExplodingClusteringBackend(NumpyBackend):
    """Raises inside the worker *during* Phase 1 (mid-clustering)."""

    name = "exploding-phase1"

    def clustering_true_pass(self, stream, st, cap, cost):
        raise RuntimeError("clustering kernel exploded")


class _SleepingClusteringBackend(NumpyBackend):
    """Hangs inside the worker during Phase 1 — timeout teardown."""

    name = "sleeping-phase1"

    def clustering_true_pass(self, stream, st, cap, cost):
        import time

        time.sleep(60.0)


class _SleepingBackend(NumpyBackend):
    """Hangs inside the worker — exercises the task-timeout teardown."""

    name = "sleeping"

    def prepartition_pass(self, stream, ctx):
        import time

        time.sleep(60.0)
        return 0


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
class TestCrashedWorkerCleanup:
    """No shared-memory segment may outlive a failed process session.

    The parent owns every segment (worker state views, assignments, the
    shipped edge array) and unlinks them in the session's idempotent
    ``close()``, which also unregisters them from the resource tracker
    shared with the pool workers — verified here by recording every
    created segment name and proving it is unlinked after the crash.
    """

    @pytest.fixture
    def recording_segments(self, monkeypatch):
        class RecordingSet(set):
            def __init__(self):
                super().__init__()
                self.ever = []

            def add(self, name):
                self.ever.append(name)
                super().add(name)

        recorder = RecordingSet()
        monkeypatch.setattr(runners_module, "_LIVE_SEGMENTS", recorder)
        return recorder

    def _register(self, backend_cls):
        import repro.kernels as kernels_pkg

        register_backend(backend_cls.name, backend_cls)
        yield
        kernels_pkg._REGISTRY.pop(backend_cls.name, None)
        kernels_pkg._INSTANCES.pop(backend_cls.name, None)

    @pytest.fixture
    def exploding_backend(self):
        yield from self._register(_ExplodingBackend)

    @pytest.fixture
    def sleeping_backend(self):
        yield from self._register(_SleepingBackend)

    def test_worker_exception_propagates_and_unlinks(
        self, community_graph, recording_segments, exploding_backend
    ):
        partitioner = ParallelTwoPhase(
            n_workers=2,
            sync_interval=32,
            backend="exploding",
            runner="process",
            start_method="fork",
        )
        with pytest.raises(RuntimeError, match="exploded"):
            partitioner.partition(community_graph, 4)
        assert recording_segments.ever, "session created no segments?"
        assert not recording_segments, "segments left registered"
        from multiprocessing import shared_memory

        for name in recording_segments.ever:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name, create=False)

    def test_failed_worker_init_surfaces_cause_fast(
        self, community_graph, recording_segments, monkeypatch
    ):
        """A failing pool initializer must not crash-loop workers until
        the task timeout: the failure is recorded and re-raised by the
        first task with the true cause."""
        import repro.core.runners as r

        def broken_init(payload):
            r._WORKER = {"init_error": "FileNotFoundError: edges gone"}

        monkeypatch.setattr(r, "_process_worker_init", broken_init)
        partitioner = ParallelTwoPhase(
            n_workers=2,
            sync_interval=32,
            runner="process",
            start_method="fork",
            task_timeout=30.0,
        )
        with pytest.raises(PartitioningError, match="initialization failed"):
            partitioner.partition(community_graph, 4)
        assert not recording_segments

    @pytest.fixture
    def exploding_clustering_backend(self):
        yield from self._register(_ExplodingClusteringBackend)

    @pytest.fixture
    def sleeping_clustering_backend(self):
        yield from self._register(_SleepingClusteringBackend)

    @pytest.mark.parametrize("runner", ["simulated", "process"])
    def test_worker_death_mid_phase1_raises_typed_error(
        self, runner, community_graph, recording_segments,
        exploding_clustering_backend,
    ):
        """ISSUE 4 satellite: a worker dying mid-Phase-1 surfaces as the
        same typed PartitioningError from the simulated and the process
        runner — never a bare pool/kernel exception — and the process
        session unlinks every shared segment it created."""
        partitioner = ParallelTwoPhase(
            n_workers=2,
            sync_interval=32,
            backend="exploding-phase1",
            runner=runner,
            start_method="fork",
            parallel_phase1=True,
        )
        with pytest.raises(PartitioningError, match="phase-1 worker"):
            partitioner.partition(community_graph, 4)
        if runner == "process":
            assert recording_segments.ever, "session created no segments?"
            assert not recording_segments, "segments left registered"
            from multiprocessing import shared_memory

            for name in recording_segments.ever:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name, create=False)

    def test_hung_worker_mid_phase1_times_out_and_unlinks(
        self, community_graph, recording_segments,
        sleeping_clustering_backend,
    ):
        partitioner = ParallelTwoPhase(
            n_workers=2,
            sync_interval=32,
            backend="sleeping-phase1",
            runner="process",
            start_method="fork",
            task_timeout=0.5,
            parallel_phase1=True,
        )
        with pytest.raises(PartitioningError, match="timeout"):
            partitioner.partition(community_graph, 4)
        assert not recording_segments
        from multiprocessing import shared_memory

        for name in recording_segments.ever:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name, create=False)

    def test_hung_worker_times_out_and_unlinks(
        self, community_graph, recording_segments, sleeping_backend
    ):
        partitioner = ParallelTwoPhase(
            n_workers=2,
            sync_interval=32,
            backend="sleeping",
            runner="process",
            start_method="fork",
            task_timeout=0.5,
        )
        with pytest.raises(PartitioningError, match="timeout"):
            partitioner.partition(community_graph, 4)
        assert not recording_segments
        from multiprocessing import shared_memory

        for name in recording_segments.ever:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name, create=False)


class TestOutOfCore:
    def test_parallel_never_materializes(
        self, tmp_path, community_graph, monkeypatch
    ):
        """The out-of-core regression fixed by the shard-window iterator:
        the parallel path must not pull the whole edge array into memory."""
        path = tmp_path / "g.bin"
        write_binary_edge_list(community_graph, path)
        stream = FileEdgeStream(path, n_vertices=community_graph.n_vertices)

        def boom(self):
            raise AssertionError("parallel path called materialize()")

        monkeypatch.setattr(type(stream), "materialize", boom)
        result = ParallelTwoPhase(n_workers=4, sync_interval=32).partition(
            stream, 8
        )
        assert result.assignments.min() >= 0

    def test_process_runner_never_materializes(
        self, tmp_path, community_graph, monkeypatch
    ):
        """File streams reopen from a picklable spec in every worker, so
        the true multi-process path stays out-of-core too."""
        path = tmp_path / "g.bin"
        write_binary_edge_list(community_graph, path)
        stream = FileEdgeStream(path, n_vertices=community_graph.n_vertices)

        def boom(self):
            raise AssertionError("process runner called materialize()")

        monkeypatch.setattr(type(stream), "materialize", boom)
        result = ParallelTwoPhase(
            n_workers=2, sync_interval=32, runner="process"
        ).partition(stream, 8)
        assert result.assignments.min() >= 0
        assert not live_shared_segments()

    def test_window_chunks_bound_memory(self, tmp_path, community_graph):
        """No window chunk may exceed the configured chunk size, so the
        resident set is O(n_workers * chunk + sync_interval), not O(|E|)."""
        path = tmp_path / "g.bin"
        write_binary_edge_list(community_graph, path)
        stream = FileEdgeStream(path, n_vertices=community_graph.n_vertices)
        observed = []
        original = type(stream)._window_iter

        def spy(self, start, stop, chunk_size):
            for chunk in original(self, start, stop, chunk_size):
                observed.append(chunk.shape[0])
                yield chunk

        stream._window_iter = spy.__get__(stream)
        ParallelTwoPhase(n_workers=4, sync_interval=64).partition(
            stream, 8, chunk_size=128
        )
        assert observed, "shard windows were never used"
        assert max(observed) <= 128

    def test_parallel_quality_still_reasonable(self, social_graph):
        """Kernel routing must not regress staleness behaviour: 4 stale
        workers stay within a band of the sequential quality."""
        par = ParallelTwoPhase(n_workers=4, sync_interval=256).partition(
            social_graph, 8
        )
        seq = TwoPhasePartitioner().partition(social_graph, 8)
        assert par.replication_factor < seq.replication_factor * 1.3
