"""Numba kernel-backend tests (ISSUE 5).

Two concerns, both runnable on every host:

- **Equivalence** — the numba backend's compiled serial kernels must be
  bit-exact with the ``python`` reference (and therefore with ``numpy``)
  across both scoring modes, the clustering passes and the sharded
  parallel path.  When numba is installed these tests exercise the real
  jitted dispatchers; when it is not, the same kernels run in their
  documented interpreted mode (plain nopython-style Python), so the
  kernel *logic* stays pinned even on numba-less hosts like the
  numba-free CI legs.
- **Absence behaviour** — with the numba import forced to fail, the
  registry must degrade ``get_backend("numba")`` to the ``numpy``
  backend with a one-time ``RuntimeWarning``, while the CLI's explicit
  ``--backend numba`` must produce a clear
  :class:`~repro.errors.PartitioningError` (rendered as ``error: ...``,
  never a traceback).
"""

from __future__ import annotations

import sys
import warnings

import numpy as np
import pytest

import repro.kernels as kernels
from repro.cli import main as cli_main
from repro.core import ParallelTwoPhase, TwoPhasePartitioner
from repro.graph.formats import write_binary_edge_list
from repro.graph.generators import chung_lu_graph, rmat_graph
from repro.kernels import available_backends, get_backend, missing_backends
from repro.kernels import numba_backend
from repro.kernels.numba_backend import NumbaBackend, NumbaParallelBackend


def _snapshot_registry():
    return (
        dict(kernels._REGISTRY),
        dict(kernels._INSTANCES),
        dict(kernels._MISSING),
        set(kernels._FALLBACK_WARNED),
    )


def _restore_registry(snapshot) -> None:
    registry, instances, missing, warned = snapshot
    kernels._REGISTRY.clear()
    kernels._REGISTRY.update(registry)
    kernels._INSTANCES.clear()
    kernels._INSTANCES.update(instances)
    kernels._MISSING.clear()
    kernels._MISSING.update(missing)
    kernels._FALLBACK_WARNED.clear()
    kernels._FALLBACK_WARNED.update(warned)


@pytest.fixture
def numba_registered():
    """A resolvable ``numba`` backend on any host.

    The real registration when numba is installed; otherwise the
    interpreted-mode backend is registered for the test's duration (the
    documented testing mode, bit-exact but slow).
    """
    if "numba" in available_backends():
        yield "numba"
        return
    snapshot = _snapshot_registry()
    kernels.register_backend("numba", NumbaBackend)
    try:
        yield "numba"
    finally:
        _restore_registry(snapshot)


@pytest.fixture
def numba_parallel_registered():
    """A resolvable ``numba-parallel`` backend on any host.

    Same pattern as ``numba_registered``: the real registration when
    numba is installed, else the interpreted-mode backend (where
    ``prange`` degrades to ``range``, pinning the kernel logic and the
    serial-fallback path of the determinism contract)."""
    if "numba-parallel" in available_backends():
        yield "numba-parallel"
        return
    snapshot = _snapshot_registry()
    kernels.register_backend("numba-parallel", NumbaParallelBackend)
    try:
        yield "numba-parallel"
    finally:
        _restore_registry(snapshot)


@pytest.fixture
def numba_missing(monkeypatch):
    """Force the numba-absent registry state, even where numba exists.

    ``sys.modules["numba"] = None`` makes ``import numba`` raise, the
    memoized detection is reset, and the optional-backend registration
    re-runs — exactly the import-time path of a numba-less host.
    """
    snapshot = _snapshot_registry()
    monkeypatch.setitem(sys.modules, "numba", None)
    monkeypatch.setattr(numba_backend, "_AVAILABLE", None)
    monkeypatch.setattr(numba_backend, "_NUMBA", numba_backend._UNSET)
    monkeypatch.setattr(numba_backend, "_NUMBA_REASON", None)
    kernels._register_optional_backends()
    try:
        yield
    finally:
        _restore_registry(snapshot)


def assert_results_identical(reference, other):
    np.testing.assert_array_equal(reference.assignments, other.assignments)
    np.testing.assert_array_equal(reference.state.sizes, other.state.sizes)
    np.testing.assert_array_equal(
        reference.state.replicas, other.state.replicas
    )
    assert reference.cost == other.cost


class TestNumbaEquivalence:
    """Compiled-kernel bit-exactness against the reference backend."""

    @pytest.mark.parametrize("mode", ["linear", "hdrf"])
    @pytest.mark.parametrize("chunk_size", [1, 37, 10**6])
    def test_hub_heavy_rmat_bit_exact(self, numba_registered, mode, chunk_size):
        """Hub-heavy R-MAT — the serial-dominated stream the compiled
        kernels exist for — across degenerate chunk sizes."""
        graph = rmat_graph(8, edge_factor=8, seed=3, a=0.7, b=0.12, c=0.12)
        ref = TwoPhasePartitioner(backend="python", mode=mode).partition(
            graph, 8, chunk_size=chunk_size
        )
        out = TwoPhasePartitioner(
            backend=numba_registered, mode=mode
        ).partition(graph, 8, chunk_size=chunk_size)
        assert_results_identical(ref, out)

    @pytest.mark.parametrize("alpha", [1.0, 1.5])
    @pytest.mark.parametrize("mode", ["linear", "hdrf"])
    def test_cap_pressure_bit_exact(self, numba_registered, mode, alpha):
        """alpha=1.0 keeps the hard cap reachable, driving the compiled
        hash / least-loaded fallback chain (linear) and the -inf cap
        masking (hdrf)."""
        graph = rmat_graph(8, edge_factor=8, seed=7)
        ref = TwoPhasePartitioner(backend="python", mode=mode).partition(
            graph, 5, alpha=alpha, chunk_size=64
        )
        out = TwoPhasePartitioner(
            backend=numba_registered, mode=mode
        ).partition(graph, 5, alpha=alpha, chunk_size=64)
        assert_results_identical(ref, out)

    @pytest.mark.parametrize("hdrf_lambda", [0.0, 1.1, 15.0])
    def test_hdrf_lambda_sweep_bit_exact(self, numba_registered, hdrf_lambda):
        graph = rmat_graph(8, edge_factor=8, seed=5)
        ref = TwoPhasePartitioner(
            backend="python", mode="hdrf", hdrf_lambda=hdrf_lambda
        ).partition(graph, 6)
        out = TwoPhasePartitioner(
            backend=numba_registered, mode="hdrf", hdrf_lambda=hdrf_lambda
        ).partition(graph, 6)
        assert_results_identical(ref, out)

    @pytest.mark.parametrize("use_true", [True, False])
    def test_clustering_passes_bit_exact(self, numba_registered, use_true):
        """Both compiled clustering bodies (Algorithm 1 and the Hollocou
        partial-degree ablation), multi-pass re-streaming included."""
        from repro.core.clustering import StreamingClustering
        from repro.graph.degrees import compute_degrees_from_stream
        from repro.streaming import InMemoryEdgeStream

        graph = chung_lu_graph(80, 320, gamma=2.1, seed=11)
        results = {}
        for name in ("python", numba_registered):
            stream = InMemoryEdgeStream(graph)
            stream.default_chunk_size = 13
            degrees = (
                compute_degrees_from_stream(stream, backend=name)
                if use_true
                else None
            )
            results[name] = StreamingClustering(
                n_passes=2,
                volume_cap=graph.n_edges / 2 + 1,
                use_true_degrees=use_true,
                backend=name,
            ).run(stream, degrees=degrees, n_vertices=graph.n_vertices)
        ref, out = results["python"], results[numba_registered]
        np.testing.assert_array_equal(ref.v2c, out.v2c)
        np.testing.assert_array_equal(ref.volumes, out.volumes)
        np.testing.assert_array_equal(ref.degrees, out.degrees)

    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_parallel_path_bit_exact(self, numba_registered, n_workers):
        """The sharded path (both phases, stale views, barrier merges)
        agrees with the python backend per schedule; n_workers=1 is also
        bit-exact with the sequential pipeline."""
        graph = chung_lu_graph(90, 400, gamma=2.2, seed=17)
        runs = {}
        for name in ("python", numba_registered):
            runs[name] = ParallelTwoPhase(
                n_workers=n_workers,
                sync_interval=63,
                backend=name,
                parallel_phase1=True,
            ).partition(graph, 4, chunk_size=61)
        assert_results_identical(runs["python"], runs[numba_registered])
        if n_workers == 1:
            seq = TwoPhasePartitioner(backend=numba_registered).partition(
                graph, 4, chunk_size=61
            )
            assert_results_identical(seq, runs[numba_registered])

    def test_process_runner_bit_exact(self, numba_registered):
        """The numba backend resolves by name inside pool workers.

        With numba installed any start method works (spawn re-imports
        and re-registers).  Without it, only ``fork`` inherits the
        test-registered interpreted backend — a spawn worker would
        silently fall back to numpy and the assertion would stop
        exercising the numba kernels at all, so the test forces fork
        and skips on hosts that lack it.
        """
        if not numba_backend.numba_available():
            import multiprocessing as mp

            if "fork" not in mp.get_all_start_methods():
                pytest.skip(
                    "interpreted numba backend needs the fork start "
                    "method to reach spawn-less pool workers"
                )
            start_method = "fork"
        else:
            start_method = None
        graph = chung_lu_graph(60, 240, gamma=2.1, seed=23)
        simulated = ParallelTwoPhase(
            n_workers=2, sync_interval=63, backend=numba_registered,
            runner="simulated",
        ).partition(graph, 4)
        process = ParallelTwoPhase(
            n_workers=2, sync_interval=63, backend=numba_registered,
            runner="process", start_method=start_method,
        ).partition(graph, 4)
        assert_results_identical(simulated, process)

    def test_backend_instance_is_picklable(self, numba_registered):
        import pickle

        backend = get_backend(numba_registered)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.name == "numba"

    @pytest.mark.parametrize("chunk_size", [1, 37, 10**6])
    def test_hdrf_baseline_bit_exact(self, numba_registered, chunk_size):
        """The compiled classic-HDRF baseline twin (ISSUE 8) must land on
        the per-edge reference decisions, cost counters included."""
        from repro.baselines import HDRF

        graph = rmat_graph(8, edge_factor=8, seed=3, a=0.7, b=0.12, c=0.12)
        ref = HDRF(backend="python").partition(
            graph, 8, chunk_size=chunk_size
        )
        out = HDRF(backend=numba_registered).partition(
            graph, 8, chunk_size=chunk_size
        )
        assert_results_identical(ref, out)

    @pytest.mark.parametrize("lam", [1.1, 15.0])
    def test_hdrf_baseline_lambda_and_cap(self, numba_registered, lam):
        from repro.baselines import HDRF

        graph = rmat_graph(8, edge_factor=8, seed=7)
        ref = HDRF(lam=lam, backend="python").partition(
            graph, 5, alpha=1.0, chunk_size=64
        )
        out = HDRF(lam=lam, backend=numba_registered).partition(
            graph, 5, alpha=1.0, chunk_size=64
        )
        assert_results_identical(ref, out)


class TestNumbaParallel:
    """``numba-parallel``: prange sub-batch execution, pinned serial-equal.

    The determinism contract (see ``repro.kernels``, "Parallel sub-batch
    determinism") promises bit-exact results regardless of prange
    scheduling: per-row state is disjoint within a sub-batch and every
    order-sensitive reduction stays outside the parallel region.  These
    tests pin ``numba-parallel`` against the ``python`` reference (and
    therefore against serial ``numba``) across the passes that take the
    prange path: the remaining-edge batch apply and the Phase-1
    clustering migrations.
    """

    @pytest.mark.parametrize("mode", ["linear", "hdrf"])
    @pytest.mark.parametrize("chunk_size", [1, 37, 10**6])
    def test_sequential_bit_exact(
        self, numba_parallel_registered, mode, chunk_size
    ):
        graph = rmat_graph(8, edge_factor=8, seed=3, a=0.7, b=0.12, c=0.12)
        ref = TwoPhasePartitioner(backend="python", mode=mode).partition(
            graph, 8, chunk_size=chunk_size
        )
        out = TwoPhasePartitioner(
            backend=numba_parallel_registered, mode=mode
        ).partition(graph, 8, chunk_size=chunk_size)
        assert_results_identical(ref, out)

    def test_matches_serial_numba(
        self, numba_registered, numba_parallel_registered
    ):
        """prange ≡ serial: the two numba backends are interchangeable."""
        graph = rmat_graph(8, edge_factor=8, seed=11)
        serial = TwoPhasePartitioner(backend=numba_registered).partition(
            graph, 6, chunk_size=97
        )
        parallel = TwoPhasePartitioner(
            backend=numba_parallel_registered
        ).partition(graph, 6, chunk_size=97)
        assert_results_identical(serial, parallel)

    def test_cap_pressure_bit_exact(self, numba_parallel_registered):
        """alpha=1.0 exercises the serialized repair path around the
        parallel batch apply."""
        graph = rmat_graph(8, edge_factor=8, seed=7)
        ref = TwoPhasePartitioner(backend="python").partition(
            graph, 5, alpha=1.0, chunk_size=64
        )
        out = TwoPhasePartitioner(
            backend=numba_parallel_registered
        ).partition(graph, 5, alpha=1.0, chunk_size=64)
        assert_results_identical(ref, out)

    def test_clustering_migrations_bit_exact(self, numba_parallel_registered):
        """The prange cluster-migration body (conflict-free sub-batches
        of the speculate-verify split) against the reference."""
        from repro.core.clustering import StreamingClustering
        from repro.graph.degrees import compute_degrees_from_stream
        from repro.streaming import InMemoryEdgeStream

        graph = chung_lu_graph(80, 320, gamma=2.1, seed=11)
        results = {}
        for name in ("python", numba_parallel_registered):
            stream = InMemoryEdgeStream(graph)
            stream.default_chunk_size = 13
            degrees = compute_degrees_from_stream(stream, backend=name)
            results[name] = StreamingClustering(
                n_passes=2,
                volume_cap=graph.n_edges / 2 + 1,
                backend=name,
            ).run(stream, degrees=degrees, n_vertices=graph.n_vertices)
        ref = results["python"]
        out = results[numba_parallel_registered]
        np.testing.assert_array_equal(ref.v2c, out.v2c)
        np.testing.assert_array_equal(ref.volumes, out.volumes)

    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_parallel_runner_bit_exact(
        self, numba_parallel_registered, n_workers
    ):
        graph = chung_lu_graph(90, 400, gamma=2.2, seed=17)
        runs = {}
        for name in ("python", numba_parallel_registered):
            runs[name] = ParallelTwoPhase(
                n_workers=n_workers,
                sync_interval=63,
                backend=name,
                parallel_phase1=True,
            ).partition(graph, 4, chunk_size=61)
        assert_results_identical(
            runs["python"], runs[numba_parallel_registered]
        )

    def test_packed_state_falls_back_bit_exact(
        self, numba_parallel_registered
    ):
        """Bit-packed replica storage takes the super() (serial) path in
        the batch-apply hook; results must not change."""
        graph = rmat_graph(7, edge_factor=8, seed=5)
        dense = TwoPhasePartitioner(
            backend=numba_parallel_registered
        ).partition(graph, 6)
        packed = TwoPhasePartitioner(
            backend=numba_parallel_registered, packed_state=True
        ).partition(graph, 6)
        assert_results_identical(dense, packed)

    def test_hdrf_baseline_bit_exact(self, numba_parallel_registered):
        from repro.baselines import HDRF

        graph = rmat_graph(8, edge_factor=8, seed=3)
        ref = HDRF(backend="python").partition(graph, 8, chunk_size=512)
        out = HDRF(backend=numba_parallel_registered).partition(
            graph, 8, chunk_size=512
        )
        assert_results_identical(ref, out)

    def test_backend_instance_is_picklable(self, numba_parallel_registered):
        import pickle

        backend = get_backend(numba_parallel_registered)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.name == "numba-parallel"


class TestNumbaAbsence:
    """Registry degradation and CLI failure when numba is missing."""

    def test_registry_falls_back_with_one_time_warning(self, numba_missing):
        assert "numba" not in available_backends()
        assert "numba" in missing_backends()
        # The prange sibling is registered/unregistered in lockstep.
        assert "numba-parallel" not in available_backends()
        assert "numba-parallel" in missing_backends()
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_backend("numba")
        assert backend.name == "numpy"
        # One-time: the second resolution is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("numba").name == "numpy"

    def test_partitioners_degrade_to_numpy(self, numba_missing):
        graph = rmat_graph(6, edge_factor=4, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = TwoPhasePartitioner(backend="numba").partition(graph, 4)
            parallel = ParallelTwoPhase(
                n_workers=2, sync_interval=64, backend="numba"
            ).partition(graph, 4)
        assert result.extras["backend"] == "numpy"
        assert parallel.extras["backend"] == "numpy"

    def test_cli_backend_numba_is_a_clear_error(
        self, numba_missing, tmp_path, capsys
    ):
        graph = rmat_graph(6, edge_factor=4, seed=1)
        path = tmp_path / "edges.bin"
        write_binary_edge_list(graph, str(path))
        rc = cli_main(
            ["partition", "--input", str(path), "--k", "4",
             "--backend", "numba"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "numba" in err and "unavailable" in err
        assert "Traceback" not in err

    def test_redetection_restores_the_backend_when_possible(
        self, numba_missing
    ):
        """After the import works again, re-detection re-registers (or
        re-reports missing on hosts that truly lack numba)."""
        sys.modules.pop("numba", None)
        numba_backend._AVAILABLE = None
        numba_backend._NUMBA = numba_backend._UNSET
        numba_backend._NUMBA_REASON = None
        kernels._register_optional_backends()
        if numba_backend.numba_available():
            assert "numba" in available_backends()
        else:
            assert "numba" in missing_backends()
