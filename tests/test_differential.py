"""Drive the randomized differential harness over a fixed seed matrix.

The harness (``tests/differential.py``) derives a complete scenario from
each seed and sweeps it through the {serial, simulated, process,
distributed} x {python, numpy} matrix, asserting full-state equality
(both phases) plus shared-memory/socket/worker hygiene.  The seed matrix
is fixed so CI is deterministic; any failure message names the seed and
the exact reproduction command.
"""

import multiprocessing

import pytest

from differential import (
    RUNNERS,
    check_out_of_core_seed,
    check_seed,
    make_case,
    make_huge_case,
    run_case,
    sequential_reference,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Fixed CI seed matrix.  Chosen to cover every generator, both modes,
#: n_workers == 1 and > 1, and the sharded Phase 1 (the harness biases
#: parallel_phase1 toward True); see ``test_seed_matrix_covers_surface``.
SEED_MATRIX = (11, 23, 58, 101, 240, 397, 1009, 4242)

#: Fixed seed matrix of the huge-shape out-of-core tier.  Chosen to
#: cover every generator, both modes, n_workers == 1 and > 1, and k
#: both on and off a byte boundary (the packed-row tail bits); see
#: ``test_out_of_core_matrix_covers_surface``.
OUT_OF_CORE_SEED_MATRIX = (8, 12, 14)

#: Extra seeds for a longer local soak (kept empty in CI for run time).
EXTRA_RANDOM_SEEDS = ()


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
@pytest.mark.parametrize("seed", SEED_MATRIX + EXTRA_RANDOM_SEEDS)
def test_differential_seed(seed):
    check_seed(seed)


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
@pytest.mark.parametrize("seed", OUT_OF_CORE_SEED_MATRIX)
def test_out_of_core_differential_seed(seed):
    check_out_of_core_seed(seed)


def test_out_of_core_matrix_covers_surface():
    """The out-of-core matrix must keep stressing the packed-row layout
    (multi-byte rows, tail bits, the exact byte boundary) and both ends
    of the worker/mode dimensions."""
    cases = [make_huge_case(seed) for seed in OUT_OF_CORE_SEED_MATRIX]
    assert all(c.k > 8 for c in cases)
    assert any(c.k % 8 == 0 for c in cases)
    assert any(c.k % 8 != 0 for c in cases)
    assert {c.mode for c in cases} == {"linear", "hdrf"}
    assert any(c.n_workers == 1 for c in cases)
    assert any(c.n_workers > 1 for c in cases)
    assert len({c.generator for c in cases}) == 3


def test_huge_case_derivation_is_deterministic():
    assert make_huge_case(999) == make_huge_case(999)


def test_out_of_core_failure_names_the_seed(monkeypatch):
    """A diverging out-of-core variant must surface the reproducing
    seed and the --out-of-core flag in the error."""
    import differential

    real = differential._run_out_of_core

    def broken(case, runner, backend, packed, stream):
        result = real(case, runner, backend, packed, stream)
        if packed:  # corrupt every packed-state variant
            result.assignments[0] = (result.assignments[0] + 1) % case.k
        return result

    monkeypatch.setattr(differential, "_run_out_of_core", broken)
    with pytest.raises(AssertionError, match="--out-of-core --seed 3"):
        differential.check_out_of_core_seed(3, include_process=False)


def test_seed_matrix_covers_surface():
    """The fixed matrix must keep exercising the interesting corners even
    if the case-derivation recipe changes."""
    cases = [make_case(seed) for seed in SEED_MATRIX]
    assert {c.generator for c in cases} == {"rmat", "hub-heavy", "chung-lu"}
    assert {c.mode for c in cases} == {"linear", "hdrf"}
    assert any(c.n_workers == 1 for c in cases)
    assert any(c.n_workers > 1 for c in cases)
    assert sum(c.parallel_phase1 for c in cases) >= len(cases) // 2
    assert any(not c.parallel_phase1 for c in cases)
    # The tune dimension: both tuned and untuned cases, including a
    # tuned single-worker case where sync-interval tuning engages.
    assert any(c.tune for c in cases)
    assert any(not c.tune for c in cases)
    assert any(c.tune and c.n_workers == 1 for c in cases)


def test_case_derivation_is_deterministic():
    assert make_case(12345) == make_case(12345)


def test_failure_names_the_seed(monkeypatch):
    """A diverging run must surface the reproducing seed in the error."""
    import differential

    def broken_run(case, runner, backend):
        result = differential.ParallelTwoPhase(
            n_workers=case.n_workers,
            sync_interval=case.sync_interval,
            mode=case.mode,
            backend=backend,
            parallel_phase1=case.parallel_phase1,
        ).partition(case.build_graph(), case.k, alpha=case.alpha)
        if runner == "simulated":  # corrupt one runner's output
            result.assignments[0] = (result.assignments[0] + 1) % case.k
        return result

    monkeypatch.setattr(differential, "run_case", broken_run)
    with pytest.raises(AssertionError, match="--seed 77"):
        differential.check_seed(77, include_process=False)


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
def test_harness_pieces_compose():
    """run_case / sequential_reference agree on a hand-picked 1-worker
    case without going through check_seed (guards the helpers' API)."""
    seed = next(s for s in range(500) if make_case(s).n_workers == 1)
    case = make_case(seed)
    seq = sequential_reference(case, "numpy")
    for runner in RUNNERS:
        par = run_case(case, runner, "numpy")
        assert (par.assignments == seq.assignments).all(), (seed, runner)
