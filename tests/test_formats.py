"""Unit tests for the binary / text edge-list formats."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.graph import Graph
from repro.graph.formats import (
    BYTES_PER_EDGE,
    binary_size_bytes,
    read_binary_edge_list,
    read_text_edge_list,
    write_binary_edge_list,
    write_text_edge_list,
)


class TestBinaryFormat:
    def test_round_trip(self, tmp_path, powerlaw_graph):
        path = tmp_path / "g.bin"
        nbytes = write_binary_edge_list(powerlaw_graph, path)
        assert nbytes == powerlaw_graph.n_edges * BYTES_PER_EDGE
        loaded = read_binary_edge_list(path)
        assert np.array_equal(loaded.edges, powerlaw_graph.edges)

    def test_round_trip_preserves_order(self, tmp_path):
        g = Graph([(3, 1), (0, 2), (1, 1)])
        path = tmp_path / "g.bin"
        write_binary_edge_list(g, path)
        loaded = read_binary_edge_list(path)
        assert loaded.edges.tolist() == [[3, 1], [0, 2], [1, 1]]

    def test_vertex_count_hint(self, tmp_path):
        g = Graph([(0, 1)], n_vertices=10)
        path = tmp_path / "g.bin"
        write_binary_edge_list(g, path)
        loaded = read_binary_edge_list(path, n_vertices=10)
        assert loaded.n_vertices == 10

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_binary_edge_list(Graph([], n_vertices=3), path)
        loaded = read_binary_edge_list(path)
        assert loaded.n_edges == 0

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 7)
        with pytest.raises(FormatError):
            read_binary_edge_list(path)

    def test_id_overflow_rejected(self, tmp_path):
        g = Graph([(0, 2**33)])
        with pytest.raises(FormatError):
            write_binary_edge_list(g, tmp_path / "x.bin")

    def test_size_helper(self):
        assert binary_size_bytes(10) == 80


class TestTextFormat:
    def test_round_trip(self, tmp_path, community_graph):
        path = tmp_path / "g.txt"
        write_text_edge_list(community_graph, path)
        loaded = read_text_edge_list(path)
        assert np.array_equal(loaded.edges, community_graph.edges)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid\n2 3\n")
        loaded = read_text_edge_list(path)
        assert loaded.edges.tolist() == [[0, 1], [2, 3]]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(FormatError):
            read_text_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(FormatError):
            read_text_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        loaded = read_text_edge_list(path)
        assert loaded.n_edges == 0

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 5.5\n")
        loaded = read_text_edge_list(path)
        assert loaded.edges.tolist() == [[0, 1]]


class TestCrossFormat:
    def test_binary_and_text_agree(self, tmp_path, toy_graph):
        b = tmp_path / "g.bin"
        t = tmp_path / "g.txt"
        write_binary_edge_list(toy_graph, b)
        write_text_edge_list(toy_graph, t)
        assert np.array_equal(
            read_binary_edge_list(b).edges, read_text_edge_list(t).edges
        )
