"""Unit tests for the simulated storage substrate."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    HDD_BANDWIDTH,
    SSD_BANDWIDTH,
    PageCache,
    SimulatedClock,
    StorageDevice,
    hdd_device,
    page_cache_device,
    ssd_device,
)


class TestClock:
    def test_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.elapsed == 2.0

    def test_rejects_negative(self):
        with pytest.raises(StorageError):
            SimulatedClock().advance(-1)

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(3)
        clock.reset()
        assert clock.elapsed == 0


class TestDevice:
    def test_read_time_linear_in_bytes(self):
        dev = StorageDevice("d", 100.0)
        assert dev.read_time(200) == 2.0
        assert dev.read_time(0) == 0.0

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(StorageError):
            StorageDevice("d", 0)

    def test_rejects_negative_read(self):
        with pytest.raises(StorageError):
            StorageDevice("d", 10).read_time(-1)

    def test_charge_advances_clock(self):
        dev = StorageDevice("d", 100.0)
        seconds = dev.charge_read("f", 50)
        assert seconds == 0.5
        assert dev.clock.elapsed == 0.5

    def test_shared_clock(self):
        clock = SimulatedClock()
        a = StorageDevice("a", 100.0, clock=clock)
        b = StorageDevice("b", 200.0, clock=clock)
        a.charge_read("f", 100)
        b.charge_read("f", 100)
        assert clock.elapsed == pytest.approx(1.5)

    def test_paper_bandwidths(self):
        assert ssd_device().bandwidth == SSD_BANDWIDTH == 938_000_000.0
        assert hdd_device().bandwidth == HDD_BANDWIDTH == 158_000_000.0

    def test_ordering_page_cache_fastest(self):
        nbytes = 10_000_000
        t_pc = page_cache_device().read_time(nbytes)
        t_ssd = ssd_device().read_time(nbytes)
        t_hdd = hdd_device().read_time(nbytes)
        assert t_pc < t_ssd < t_hdd


class TestPageCache:
    def test_first_read_misses(self):
        cache = PageCache()
        cache.begin_pass("f")
        hit, miss = cache.read("f", 100)
        assert (hit, miss) == (0, 100)

    def test_second_pass_hits(self):
        cache = PageCache()
        cache.begin_pass("f")
        cache.read("f", 100)
        cache.begin_pass("f")
        hit, miss = cache.read("f", 100)
        assert (hit, miss) == (100, 0)

    def test_partial_hit(self):
        cache = PageCache()
        cache.begin_pass("f")
        cache.read("f", 100)
        cache.begin_pass("f")
        hit, miss = cache.read("f", 150)
        assert (hit, miss) == (100, 50)

    def test_drop_invalidates(self):
        cache = PageCache()
        cache.begin_pass("f")
        cache.read("f", 100)
        cache.drop()
        cache.begin_pass("f")
        hit, miss = cache.read("f", 100)
        assert (hit, miss) == (0, 100)

    def test_capacity_bound(self):
        cache = PageCache(capacity_bytes=50)
        cache.begin_pass("f")
        cache.read("f", 100)
        assert cache.resident_bytes("f") == 50

    def test_capacity_shared_across_files(self):
        cache = PageCache(capacity_bytes=100)
        cache.begin_pass("a")
        cache.read("a", 80)
        cache.begin_pass("b")
        cache.read("b", 80)
        assert cache.resident_bytes() <= 100

    def test_admission_never_shrinks_residency(self):
        """Regression (ISSUE 7 satellite): when the shared budget drops
        below a file's already-cached bytes (``capacity_bytes`` cut
        mid-run, modeling memory pressure), re-admission used to clamp
        the file *down* to the new budget — silently evicting bytes
        that were already resident and had been served as hits."""
        cache = PageCache(capacity_bytes=200)
        cache.begin_pass("f")
        cache.read("f", 120)
        assert cache.resident_bytes("f") == 120
        cache.capacity_bytes = 100  # memory pressure: budget cut
        cache.begin_pass("f")
        hit, miss = cache.read("f", 130)
        assert (hit, miss) == (120, 10)
        # The miss re-admits "f"; residency must stay at 120, not
        # shrink to the 100-byte budget.
        assert cache.resident_bytes("f") == 120

    def test_rejects_negative_capacity(self):
        with pytest.raises(StorageError):
            PageCache(capacity_bytes=-1)

    def test_rejects_negative_read(self):
        with pytest.raises(StorageError):
            PageCache().read("f", -5)

    def test_device_with_cache_charges_misses_only(self):
        cache = PageCache()
        dev = StorageDevice("ssd", 100.0, cache=cache)
        dev.begin_pass("f")
        first = dev.charge_read("f", 100)
        dev.begin_pass("f")
        second = dev.charge_read("f", 100)
        assert first == pytest.approx(1.0)
        assert second < 0.001  # page-cache bandwidth

    def test_drop_page_cache_restores_cost(self):
        cache = PageCache()
        dev = StorageDevice("ssd", 100.0, cache=cache)
        dev.begin_pass("f")
        dev.charge_read("f", 100)
        dev.drop_page_cache()
        dev.begin_pass("f")
        again = dev.charge_read("f", 100)
        assert again == pytest.approx(1.0)
