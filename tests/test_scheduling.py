"""Unit tests for Graham sorted-list scheduling (Phase 2, Step 1)."""

import numpy as np
import pytest

from repro.core.scheduling import graham_schedule, makespan_lower_bound
from repro.errors import PartitioningError
from repro.metrics.runtime import CostCounter


class TestSchedule:
    def test_all_clusters_mapped(self):
        volumes = np.array([5, 3, 8, 1, 0])
        c2p, loads = graham_schedule(volumes, 2)
        assert c2p.shape == (5,)
        assert (c2p >= 0).all()
        assert (c2p < 2).all()

    def test_loads_match_assignment(self):
        volumes = np.array([5, 3, 8, 1])
        c2p, loads = graham_schedule(volumes, 3)
        recomputed = np.zeros(3, dtype=np.int64)
        np.add.at(recomputed, c2p, volumes)
        assert np.array_equal(recomputed, loads)

    def test_largest_job_goes_first(self):
        volumes = np.array([1, 100, 1])
        c2p, loads = graham_schedule(volumes, 2)
        # The two small jobs share the other machine.
        assert c2p[0] == c2p[2]
        assert c2p[1] != c2p[0]

    def test_zero_volume_clusters_do_not_load(self):
        volumes = np.array([0, 0, 7])
        c2p, loads = graham_schedule(volumes, 2)
        assert loads.sum() == 7

    def test_empty_input(self):
        c2p, loads = graham_schedule(np.array([], dtype=np.int64), 4)
        assert c2p.shape == (0,)
        assert loads.sum() == 0

    def test_deterministic(self):
        volumes = np.array([4, 4, 4, 4, 4])
        a, _ = graham_schedule(volumes, 3)
        b, _ = graham_schedule(volumes, 3)
        assert np.array_equal(a, b)

    def test_rejects_negative_volumes(self):
        with pytest.raises(PartitioningError):
            graham_schedule(np.array([-1, 2]), 2)

    def test_rejects_bad_k(self):
        with pytest.raises(PartitioningError):
            graham_schedule(np.array([1]), 0)

    def test_heap_ops_counted(self):
        cost = CostCounter()
        graham_schedule(np.array([3, 2, 1]), 2, cost=cost)
        assert cost.heap_operations == 6  # pop+push per nonzero cluster


class TestApproximationGuarantee:
    def test_four_thirds_bound_random_instances(self):
        rng = np.random.default_rng(5)
        for _ in range(25):
            n = int(rng.integers(1, 60))
            k = int(rng.integers(1, 12))
            volumes = rng.integers(0, 1000, size=n)
            _, loads = graham_schedule(volumes, k)
            makespan = loads.max() if k else 0
            lower = makespan_lower_bound(volumes, k)
            if lower > 0:
                # Sorted list scheduling is a 4/3-approximation; allow the
                # +max-job slack of Graham's direct bound as well.
                assert makespan <= (4.0 / 3.0) * lower + 1e-9

    def test_perfectly_divisible(self):
        volumes = np.array([2] * 12)
        _, loads = graham_schedule(volumes, 4)
        assert loads.tolist() == [6, 6, 6, 6]


class TestLowerBound:
    def test_mean_bound(self):
        assert makespan_lower_bound(np.array([3, 3, 3]), 3) == 3.0

    def test_max_job_bound(self):
        assert makespan_lower_bound(np.array([10, 1]), 4) == 10.0

    def test_empty(self):
        assert makespan_lower_bound(np.array([]), 3) == 0.0
