"""Unit tests for the metrics package (replication, balance, memory, cost)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PartitioningError
from repro.metrics import (
    CostCounter,
    CostModel,
    PhaseTimer,
    analytic_state_bytes,
    measured_alpha,
    measured_state_bytes,
    partition_sizes,
    replication_factor_from_assignments,
    validate_partition,
    vertex_cover_sizes,
)
from repro.metrics.balance import balance_summary
from repro.metrics.replication import replica_histogram
from repro.partitioning import PartitionState


class TestReplicationMetrics:
    def test_single_partition_rf_is_one(self):
        edges = np.array([[0, 1], [1, 2]])
        rf = replication_factor_from_assignments(edges, np.array([0, 0]), 2, 3)
        assert rf == 1.0

    def test_full_split_rf(self):
        edges = np.array([[0, 1], [0, 1]])
        rf = replication_factor_from_assignments(edges, np.array([0, 1]), 2, 2)
        assert rf == 2.0

    def test_empty_edges(self):
        rf = replication_factor_from_assignments(
            np.empty((0, 2), dtype=int), np.empty(0, dtype=int), 2, 5
        )
        assert rf == 0.0

    def test_cover_sizes(self):
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        covers = vertex_cover_sizes(edges, np.array([0, 0, 1]), 2, 5)
        assert covers.tolist() == [3, 2]

    def test_cover_rejects_length_mismatch(self):
        with pytest.raises(PartitioningError):
            vertex_cover_sizes(np.array([[0, 1]]), np.array([0, 1]), 2, 2)

    def test_cover_rejects_out_of_range(self):
        with pytest.raises(PartitioningError):
            vertex_cover_sizes(np.array([[0, 1]]), np.array([5]), 2, 2)

    def test_agrees_with_state(self, powerlaw_graph):
        """The two independent RF implementations must agree."""
        from repro.baselines import DBH

        result = DBH().partition(powerlaw_graph, 8)
        recomputed = replication_factor_from_assignments(
            powerlaw_graph.edges, result.assignments, 8, powerlaw_graph.n_vertices
        )
        assert recomputed == pytest.approx(result.replication_factor)

    def test_histogram_sums_to_covered(self):
        edges = np.array([[0, 1], [0, 2], [0, 3]])
        hist = replica_histogram(edges, np.array([0, 1, 2]), 3, 4)
        assert hist[0] == 0  # all 4 vertices covered
        assert hist.sum() == 4
        assert hist[3] == 1  # vertex 0 on 3 partitions


class TestBalanceMetrics:
    def test_partition_sizes(self):
        sizes = partition_sizes(np.array([0, 0, 1, 2, 2, 2]), 4)
        assert sizes.tolist() == [2, 1, 3, 0]

    def test_measured_alpha_perfect(self):
        assert measured_alpha(np.array([0, 1, 0, 1]), 2) == 1.0

    def test_measured_alpha_skewed(self):
        assert measured_alpha(np.array([0, 0, 0, 1]), 2) == 1.5

    def test_measured_alpha_empty(self):
        assert measured_alpha(np.empty(0, dtype=int), 4) == 1.0

    def test_validate_accepts_valid(self):
        edges = np.array([[0, 1], [1, 2]])
        validate_partition(edges, np.array([0, 1]), 2, alpha=1.05)

    def test_validate_rejects_unassigned(self):
        edges = np.array([[0, 1]])
        with pytest.raises(PartitioningError):
            validate_partition(edges, np.array([-1]), 2)

    def test_validate_rejects_out_of_range(self):
        edges = np.array([[0, 1]])
        with pytest.raises(PartitioningError):
            validate_partition(edges, np.array([2]), 2)

    def test_validate_rejects_imbalance(self):
        edges = np.array([[0, 1]] * 10)
        with pytest.raises(PartitioningError):
            validate_partition(edges, np.zeros(10, dtype=int), 2, alpha=1.05)

    def test_validate_rejects_length_mismatch(self):
        with pytest.raises(PartitioningError):
            validate_partition(np.array([[0, 1]]), np.array([0, 0]), 2)

    def test_balance_summary(self):
        summary = balance_summary(np.array([0, 0, 1]), 2)
        assert summary["min"] == 1
        assert summary["max"] == 2
        assert summary["alpha"] == pytest.approx(4 / 3)


class TestMemoryModels:
    def test_stateful_grows_with_k(self):
        lo = analytic_state_bytes("2ps-l", 1000, 10_000, 4)
        hi = analytic_state_bytes("2ps-l", 1000, 10_000, 256)
        assert hi > lo

    def test_dbh_independent_of_k(self):
        lo = analytic_state_bytes("dbh", 1000, 10_000, 4)
        hi = analytic_state_bytes("dbh", 1000, 10_000, 256)
        assert lo == hi

    def test_grid_independent_of_v(self):
        lo = analytic_state_bytes("grid", 1000, 10_000, 8)
        hi = analytic_state_bytes("grid", 1_000_000, 10_000, 8)
        assert lo == hi

    def test_in_memory_scales_with_edges(self):
        lo = analytic_state_bytes("in-memory", 1000, 10_000, 8)
        hi = analytic_state_bytes("in-memory", 1000, 20_000, 8)
        assert hi == 2 * lo

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            analytic_state_bytes("quantum", 1, 1, 2)

    def test_measured_bytes_mixes_sources(self):
        state = PartitionState(10, 2, 4)
        arr = np.zeros(10)
        total = measured_state_bytes(state, arr, [1, 2, 3], None)
        assert total == state.nbytes() + arr.nbytes + 24

    def test_measured_bytes_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            measured_state_bytes(object())


class TestCostAccounting:
    def test_counter_total(self):
        counter = CostCounter(edges_streamed=10, score_evaluations=5)
        assert counter.total_operations() == 15

    def test_counter_merge(self):
        a = CostCounter(edges_streamed=1, heap_operations=2)
        b = CostCounter(edges_streamed=3, expansion_scans=4)
        merged = a.merged_with(b)
        assert merged.edges_streamed == 4
        assert merged.heap_operations == 2
        assert merged.expansion_scans == 4

    def test_model_seconds_positive(self):
        model = CostModel()
        counter = CostCounter(edges_streamed=1_000_000)
        assert model.seconds(counter) == pytest.approx(1_000_000 * 45e-9)

    def test_model_k_sensitivity(self):
        """The model makes O(|E|k) visibly slower than O(|E|)."""
        model = CostModel()
        linear = CostCounter(edges_streamed=10_000, score_evaluations=2 * 10_000)
        bik = CostCounter(edges_streamed=10_000, score_evaluations=256 * 10_000)
        assert model.seconds(bik) > 10 * model.seconds(linear)

    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.totals) == {"a", "b"}
        assert timer.total() >= 0

    def test_phase_timer_fractions(self):
        timer = PhaseTimer()
        timer.add("x", 3.0)
        timer.add("y", 1.0)
        fractions = timer.fractions()
        assert fractions["x"] == pytest.approx(0.75)
        assert fractions["y"] == pytest.approx(0.25)

    def test_phase_timer_empty_fractions(self):
        assert PhaseTimer().fractions() == {}
