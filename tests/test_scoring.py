"""Unit tests for the 2PS-L and HDRF scoring functions."""

import numpy as np
import pytest

from repro.core.scoring import (
    hdrf_balance_scores,
    hdrf_replication_scores,
    hdrf_scores,
    twopsl_score,
)


class TestTwoPSLScore:
    def test_zero_when_nothing_matches(self):
        assert twopsl_score(3, 5, False, False, 10, 20, False, False) == 0.0

    def test_replication_term_prefers_low_degree_endpoint(self):
        # Replicating the low-degree endpoint scores higher: g = 2 - d/(du+dv)
        low = twopsl_score(1, 9, True, False, 0, 0, False, False)
        high = twopsl_score(9, 1, True, False, 0, 0, False, False)
        assert low > high
        assert low == pytest.approx(2 - 0.1)
        assert high == pytest.approx(2 - 0.9)

    def test_both_replicated_sums(self):
        s = twopsl_score(5, 5, True, True, 0, 0, False, False)
        assert s == pytest.approx(3.0)  # (2 - .5) * 2

    def test_cluster_volume_term(self):
        # Larger adjacent cluster pulls harder.
        big = twopsl_score(1, 1, False, False, 30, 10, True, False)
        small = twopsl_score(1, 1, False, False, 30, 10, False, True)
        assert big == pytest.approx(0.75)
        assert small == pytest.approx(0.25)
        assert big > small

    def test_full_formula(self):
        s = twopsl_score(2, 6, True, False, 10, 30, True, False)
        expected = (2 - 2 / 8) + 10 / 40
        assert s == pytest.approx(expected)

    def test_zero_volume_guard(self):
        s = twopsl_score(1, 1, False, False, 0, 0, True, True)
        assert s == 0.0

    def test_score_bounded(self):
        # Max possible: both endpoints replicated + both clusters on p.
        s = twopsl_score(1, 1, True, True, 5, 5, True, True)
        assert s <= 4.0


class TestHDRFScores:
    def test_replication_scores_vectorized(self):
        u_rep = np.array([True, False, True])
        v_rep = np.array([False, False, True])
        scores = hdrf_replication_scores(2, 6, u_rep, v_rep)
        theta_u = 0.25
        assert scores[0] == pytest.approx(2 - theta_u)
        assert scores[1] == 0.0
        assert scores[2] == pytest.approx((2 - theta_u) + (1 + theta_u))

    def test_replication_scores_zero_degrees(self):
        scores = hdrf_replication_scores(0, 0, np.array([True]), np.array([True]))
        assert scores[0] == 0.0

    def test_balance_scores_prefer_empty(self):
        scores = hdrf_balance_scores(np.array([10.0, 0.0, 5.0]))
        assert np.argmax(scores) == 1
        assert scores[1] == pytest.approx(1.0)
        assert scores[0] == pytest.approx(0.0)

    def test_balance_scores_all_equal(self):
        scores = hdrf_balance_scores(np.array([3.0, 3.0]))
        assert np.allclose(scores, 0.0)

    def test_full_score_combines(self):
        u_rep = np.array([True, False])
        v_rep = np.array([False, False])
        sizes = np.array([5.0, 0.0])
        full = hdrf_scores(4, 4, u_rep, v_rep, sizes, lam=1.1)
        # Partition 0: replication 1.5; partition 1: balance 1.1.
        assert full[0] == pytest.approx(1.5)
        assert full[1] == pytest.approx(1.1)

    def test_lambda_scales_balance(self):
        sizes = np.array([5.0, 0.0])
        none = np.array([False, False])
        low = hdrf_scores(1, 1, none, none, sizes, lam=0.5)
        high = hdrf_scores(1, 1, none, none, sizes, lam=2.0)
        assert high[1] == pytest.approx(4 * low[1])
