"""Tests for the streaming vertex-partitioning substrate."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.metrics import replication_factor_from_assignments
from repro.vertexpart import (
    Fennel,
    HashVertices,
    LinearDeterministicGreedy,
    derived_edge_assignment,
    edge_cut_fraction,
    vertex_balance,
)


@pytest.mark.parametrize(
    "factory",
    [HashVertices, LinearDeterministicGreedy, Fennel],
    ids=["Hash-V", "LDG", "FENNEL"],
)
class TestContract:
    def test_every_vertex_assigned(self, factory, community_graph):
        result = factory().partition(community_graph, 4)
        assert result.parts.shape == (community_graph.n_vertices,)
        assert result.parts.min() >= 0
        assert result.parts.max() < 4

    def test_rejects_k_one(self, factory, toy_graph):
        with pytest.raises(PartitioningError):
            factory().partition(toy_graph, 1)

    def test_deterministic(self, factory, community_graph):
        a = factory().partition(community_graph, 4)
        b = factory().partition(community_graph, 4)
        assert np.array_equal(a.parts, b.parts)


class TestQuality:
    def test_ldg_beats_hashing_on_communities(self, community_graph):
        ldg = LinearDeterministicGreedy().partition(community_graph, 4)
        rand = HashVertices().partition(community_graph, 4)
        assert edge_cut_fraction(community_graph.edges, ldg.parts) < (
            edge_cut_fraction(community_graph.edges, rand.parts)
        )

    def test_fennel_beats_hashing_on_communities(self, community_graph):
        fennel = Fennel().partition(community_graph, 4)
        rand = HashVertices().partition(community_graph, 4)
        assert edge_cut_fraction(community_graph.edges, fennel.parts) < (
            edge_cut_fraction(community_graph.edges, rand.parts)
        )

    def test_balance_respected(self, community_graph):
        for factory in (LinearDeterministicGreedy, Fennel):
            result = factory().partition(community_graph, 4)
            assert vertex_balance(result.parts, 4) <= 1.11

    def test_ldg_rejects_bad_slack(self):
        with pytest.raises(PartitioningError):
            LinearDeterministicGreedy(slack=0.5)

    def test_fennel_rejects_bad_gamma(self):
        with pytest.raises(PartitioningError):
            Fennel(gamma_f=1.0)


class TestMetrics:
    def test_edge_cut_zero_when_single_machine(self, toy_graph):
        parts = np.zeros(toy_graph.n_vertices, dtype=np.int64)
        assert edge_cut_fraction(toy_graph.edges, parts) == 0.0

    def test_edge_cut_full_split(self):
        edges = np.array([[0, 1], [2, 3]])
        parts = np.array([0, 1, 0, 1])
        assert edge_cut_fraction(edges, parts) == 1.0

    def test_edge_cut_rejects_unassigned(self):
        edges = np.array([[0, 1]])
        with pytest.raises(PartitioningError):
            edge_cut_fraction(edges, np.array([0, -1]))

    def test_vertex_balance_perfect(self):
        assert vertex_balance(np.array([0, 1, 0, 1]), 2) == 1.0

    def test_vertex_balance_skew(self):
        assert vertex_balance(np.array([0, 0, 0, 1]), 2) == 1.5

    def test_derived_assignment_valid(self, community_graph):
        result = HashVertices().partition(community_graph, 4)
        induced = derived_edge_assignment(community_graph.edges, result.parts, 4)
        assert induced.shape[0] == community_graph.n_edges
        assert induced.min() >= 0
        assert induced.max() < 4

    def test_derived_assignment_rf_comparable(self, community_graph):
        result = HashVertices().partition(community_graph, 4)
        induced = derived_edge_assignment(community_graph.edges, result.parts, 4)
        rf = replication_factor_from_assignments(
            community_graph.edges, induced, 4, community_graph.n_vertices
        )
        assert rf >= 1.0

    def test_hub_concentration_on_skewed_graphs(self, social_graph):
        """The Section-I story: vertex-balanced placements leave edges
        (work) badly imbalanced on power-law graphs."""
        from repro.metrics import measured_alpha

        ldg = LinearDeterministicGreedy().partition(social_graph, 16)
        induced = derived_edge_assignment(social_graph.edges, ldg.parts, 16)
        # Hard cap is ceil(1.1 * n/k), so measured vertex balance can land
        # a rounding step above 1.1.
        assert vertex_balance(ldg.parts, 16) <= 1.15
        assert measured_alpha(induced, 16) > 1.5
