"""Tests for the stateful streaming baselines: HDRF, Greedy, ADWISE."""

import numpy as np
import pytest

from repro.baselines import DBH, HDRF, Adwise, Greedy, RandomHash
from repro.errors import ConfigurationError
from repro.metrics import validate_partition


class TestHDRF:
    def test_valid_partitioning(self, powerlaw_graph):
        result = HDRF().partition(powerlaw_graph, 8)
        validate_partition(powerlaw_graph.edges, result.assignments, 8, alpha=1.05)

    def test_hard_cap_enforced(self, powerlaw_graph):
        result = HDRF().partition(powerlaw_graph, 16)
        assert result.sizes.max() <= result.state.capacity

    def test_beats_random_hashing(self, social_graph):
        hdrf = HDRF().partition(social_graph, 16)
        rand = RandomHash().partition(social_graph, 16)
        assert hdrf.replication_factor < rand.replication_factor

    def test_beats_dbh_on_social(self, social_graph):
        """The paper's stateful-vs-stateless quality gap."""
        hdrf = HDRF().partition(social_graph, 16)
        dbh = DBH().partition(social_graph, 16)
        assert hdrf.replication_factor < dbh.replication_factor

    def test_cost_linear_in_k(self, powerlaw_graph):
        a = HDRF().partition(powerlaw_graph, 4)
        b = HDRF().partition(powerlaw_graph, 32)
        assert b.cost.score_evaluations == 8 * a.cost.score_evaluations

    def test_deterministic(self, social_graph):
        a = HDRF().partition(social_graph, 8)
        b = HDRF().partition(social_graph, 8)
        assert np.array_equal(a.assignments, b.assignments)

    def test_lambda_zero_ignores_balance(self, powerlaw_graph):
        """With lam=0 the balance term vanishes; imbalance grows until the
        hard cap intervenes."""
        loose = HDRF(lam=0.0).partition(powerlaw_graph, 8)
        tight = HDRF(lam=5.0).partition(powerlaw_graph, 8)
        assert tight.measured_alpha <= loose.measured_alpha + 1e-9

    def test_replicas_match_assignments(self, powerlaw_graph):
        result = HDRF().partition(powerlaw_graph, 8)
        expected = np.zeros_like(result.state.replicas)
        expected[powerlaw_graph.edges[:, 0], result.assignments] = True
        expected[powerlaw_graph.edges[:, 1], result.assignments] = True
        assert np.array_equal(result.state.replicas, expected)


class TestGreedy:
    def test_valid_partitioning(self, powerlaw_graph):
        result = Greedy().partition(powerlaw_graph, 8)
        validate_partition(powerlaw_graph.edges, result.assignments, 8, alpha=1.05)

    def test_colocates_repeated_edge(self):
        from repro.graph import Graph

        # Capacity per partition is floor(1.05 * 8 / 2) = 4, so all four
        # copies of (0, 1) fit on the partition the first copy chose.
        g = Graph([(0, 1)] * 4 + [(2, 3)] * 4)
        result = Greedy().partition(g, 2)
        assert len(set(result.assignments[:4].tolist())) == 1
        assert len(set(result.assignments[4:].tolist())) == 1

    def test_better_than_random(self, social_graph):
        greedy = Greedy().partition(social_graph, 16)
        rand = RandomHash().partition(social_graph, 16)
        assert greedy.replication_factor < rand.replication_factor

    def test_balanced(self, powerlaw_graph):
        result = Greedy().partition(powerlaw_graph, 8)
        assert result.measured_alpha <= 1.05 + 8 / powerlaw_graph.n_edges


class TestAdwise:
    def test_valid_partitioning(self, powerlaw_graph):
        result = Adwise(buffer_size=32).partition(powerlaw_graph, 8)
        validate_partition(powerlaw_graph.edges, result.assignments, 8, alpha=1.05)

    def test_rejects_bad_buffer(self):
        with pytest.raises(ConfigurationError):
            Adwise(buffer_size=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            Adwise(assign_fraction=0.0)

    def test_buffer_one_degenerates_to_hdrf_like(self, community_graph):
        result = Adwise(buffer_size=1, assign_fraction=1.0).partition(
            community_graph, 4
        )
        validate_partition(community_graph.edges, result.assignments, 4, alpha=1.05)

    def test_not_worse_than_random(self, community_graph):
        adwise = Adwise(buffer_size=64).partition(community_graph, 8)
        rand = RandomHash().partition(community_graph, 8)
        assert adwise.replication_factor < rand.replication_factor

    def test_cost_reflects_buffer_rescoring(self, community_graph):
        """ADWISE is the most expensive streaming system (paper Fig. 4)."""
        adwise = Adwise(buffer_size=64, assign_fraction=0.25).partition(
            community_graph, 8
        )
        hdrf = HDRF().partition(community_graph, 8)
        assert adwise.cost.score_evaluations > hdrf.cost.score_evaluations

    def test_extras_record_buffer(self, toy_graph):
        result = Adwise(buffer_size=5).partition(toy_graph, 2)
        assert result.extras["buffer_size"] == 5
