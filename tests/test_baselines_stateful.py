"""Tests for the stateful streaming baselines: HDRF, Greedy, ADWISE."""

import numpy as np
import pytest

from repro.baselines import DBH, HDRF, Adwise, Greedy, RandomHash
from repro.errors import ConfigurationError
from repro.metrics import validate_partition


class TestHDRF:
    def test_valid_partitioning(self, powerlaw_graph):
        result = HDRF().partition(powerlaw_graph, 8)
        validate_partition(powerlaw_graph.edges, result.assignments, 8, alpha=1.05)

    def test_hard_cap_enforced(self, powerlaw_graph):
        result = HDRF().partition(powerlaw_graph, 16)
        assert result.sizes.max() <= result.state.capacity

    def test_beats_random_hashing(self, social_graph):
        hdrf = HDRF().partition(social_graph, 16)
        rand = RandomHash().partition(social_graph, 16)
        assert hdrf.replication_factor < rand.replication_factor

    def test_beats_dbh_on_social(self, social_graph):
        """The paper's stateful-vs-stateless quality gap."""
        hdrf = HDRF().partition(social_graph, 16)
        dbh = DBH().partition(social_graph, 16)
        assert hdrf.replication_factor < dbh.replication_factor

    def test_cost_linear_in_k(self, powerlaw_graph):
        a = HDRF().partition(powerlaw_graph, 4)
        b = HDRF().partition(powerlaw_graph, 32)
        assert b.cost.score_evaluations == 8 * a.cost.score_evaluations

    def test_deterministic(self, social_graph):
        a = HDRF().partition(social_graph, 8)
        b = HDRF().partition(social_graph, 8)
        assert np.array_equal(a.assignments, b.assignments)

    def test_lambda_zero_ignores_balance(self, powerlaw_graph):
        """With lam=0 the balance term vanishes; imbalance grows until the
        hard cap intervenes."""
        loose = HDRF(lam=0.0).partition(powerlaw_graph, 8)
        tight = HDRF(lam=5.0).partition(powerlaw_graph, 8)
        assert tight.measured_alpha <= loose.measured_alpha + 1e-9

    def test_replicas_match_assignments(self, powerlaw_graph):
        result = HDRF().partition(powerlaw_graph, 8)
        expected = np.zeros_like(result.state.replicas)
        expected[powerlaw_graph.edges[:, 0], result.assignments] = True
        expected[powerlaw_graph.edges[:, 1], result.assignments] = True
        assert np.array_equal(result.state.replicas, expected)


class TestHDRFBackends:
    """Batched baseline bit-exactness across kernel backends (ISSUE 8).

    The baseline pass dispatches through the kernel registry; the
    vectorized ``numpy`` twin reconstructs partial degrees per block and
    runs the speculate-verify-repair machinery, and must land on exactly
    the per-edge reference decisions — assignments, replicas, sizes AND
    the simulated cost counters.  (The numba twins are pinned in
    ``tests/test_numba_backend.py``, where registration is managed.)
    """

    @staticmethod
    def _identical(a, b):
        np.testing.assert_array_equal(a.assignments, b.assignments)
        np.testing.assert_array_equal(a.state.sizes, b.state.sizes)
        np.testing.assert_array_equal(a.state.replicas, b.state.replicas)
        assert a.cost == b.cost
        assert a.state_bytes == b.state_bytes

    @pytest.mark.parametrize("chunk_size", [1, 37, 4096, 10**6])
    def test_numpy_matches_python(self, powerlaw_graph, chunk_size):
        ref = HDRF(backend="python").partition(
            powerlaw_graph, 8, chunk_size=chunk_size
        )
        out = HDRF(backend="numpy").partition(
            powerlaw_graph, 8, chunk_size=chunk_size
        )
        self._identical(ref, out)

    @pytest.mark.parametrize("lam", [0.0, 1.1, 2.5, 15.0])
    def test_lambda_sweep_bit_exact(self, social_graph, lam):
        ref = HDRF(lam=lam, backend="python").partition(social_graph, 6)
        out = HDRF(lam=lam, backend="numpy").partition(social_graph, 6)
        self._identical(ref, out)

    def test_cap_pressure_bit_exact(self, powerlaw_graph):
        """alpha=1.0 keeps the hard cap reachable, driving the masked
        argmax and the repair path."""
        ref = HDRF(backend="python").partition(
            powerlaw_graph, 5, alpha=1.0, chunk_size=64
        )
        out = HDRF(backend="numpy").partition(
            powerlaw_graph, 5, alpha=1.0, chunk_size=64
        )
        self._identical(ref, out)

    def test_self_loops_bit_exact(self):
        """Self-loops bump one partial degree twice (theta lands exactly
        on 1/2); the batched degree reconstruction must reproduce it."""
        rng = np.random.default_rng(13)
        edges = rng.integers(0, 200, size=(3000, 2), dtype=np.int64)
        loops = rng.random(3000) < 0.05
        edges[loops, 1] = edges[loops, 0]
        ref = HDRF(backend="python").partition(
            edges, 4, n_vertices=200, chunk_size=101
        )
        out = HDRF(backend="numpy").partition(
            edges, 4, n_vertices=200, chunk_size=101
        )
        self._identical(ref, out)

    def test_unknown_backend_fails_at_construction(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            HDRF(backend="no-such-backend")


class TestGreedy:
    def test_valid_partitioning(self, powerlaw_graph):
        result = Greedy().partition(powerlaw_graph, 8)
        validate_partition(powerlaw_graph.edges, result.assignments, 8, alpha=1.05)

    def test_colocates_repeated_edge(self):
        from repro.graph import Graph

        # Capacity per partition is floor(1.05 * 8 / 2) = 4, so all four
        # copies of (0, 1) fit on the partition the first copy chose.
        g = Graph([(0, 1)] * 4 + [(2, 3)] * 4)
        result = Greedy().partition(g, 2)
        assert len(set(result.assignments[:4].tolist())) == 1
        assert len(set(result.assignments[4:].tolist())) == 1

    def test_better_than_random(self, social_graph):
        greedy = Greedy().partition(social_graph, 16)
        rand = RandomHash().partition(social_graph, 16)
        assert greedy.replication_factor < rand.replication_factor

    def test_balanced(self, powerlaw_graph):
        result = Greedy().partition(powerlaw_graph, 8)
        assert result.measured_alpha <= 1.05 + 8 / powerlaw_graph.n_edges


class TestAdwise:
    def test_valid_partitioning(self, powerlaw_graph):
        result = Adwise(buffer_size=32).partition(powerlaw_graph, 8)
        validate_partition(powerlaw_graph.edges, result.assignments, 8, alpha=1.05)

    def test_rejects_bad_buffer(self):
        with pytest.raises(ConfigurationError):
            Adwise(buffer_size=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            Adwise(assign_fraction=0.0)

    def test_buffer_one_degenerates_to_hdrf_like(self, community_graph):
        result = Adwise(buffer_size=1, assign_fraction=1.0).partition(
            community_graph, 4
        )
        validate_partition(community_graph.edges, result.assignments, 4, alpha=1.05)

    def test_not_worse_than_random(self, community_graph):
        adwise = Adwise(buffer_size=64).partition(community_graph, 8)
        rand = RandomHash().partition(community_graph, 8)
        assert adwise.replication_factor < rand.replication_factor

    def test_cost_reflects_buffer_rescoring(self, community_graph):
        """ADWISE is the most expensive streaming system (paper Fig. 4)."""
        adwise = Adwise(buffer_size=64, assign_fraction=0.25).partition(
            community_graph, 8
        )
        hdrf = HDRF().partition(community_graph, 8)
        assert adwise.cost.score_evaluations > hdrf.cost.score_evaluations

    def test_extras_record_buffer(self, toy_graph):
        result = Adwise(buffer_size=5).partition(toy_graph, 2)
        assert result.extras["buffer_size"] == 5
