"""Unit tests for stream-order utilities."""

import numpy as np

from repro.graph import Graph
from repro.streaming.order import bfs_like_order, degree_sorted_order, shuffled_copy


def _same_multiset(a: Graph, b: Graph) -> bool:
    ka = np.sort(a.edges.view([("u", a.edges.dtype), ("v", a.edges.dtype)]).ravel())
    kb = np.sort(b.edges.view([("u", b.edges.dtype), ("v", b.edges.dtype)]).ravel())
    return np.array_equal(ka, kb)


class TestShuffled:
    def test_preserves_edges(self, powerlaw_graph):
        assert _same_multiset(powerlaw_graph, shuffled_copy(powerlaw_graph, seed=4))

    def test_deterministic(self, powerlaw_graph):
        a = shuffled_copy(powerlaw_graph, seed=4)
        b = shuffled_copy(powerlaw_graph, seed=4)
        assert np.array_equal(a.edges, b.edges)


class TestDegreeSorted:
    def test_ascending_key_monotone(self, powerlaw_graph):
        g = degree_sorted_order(powerlaw_graph)
        deg = powerlaw_graph.degrees
        key = np.maximum(deg[g.edges[:, 0]], deg[g.edges[:, 1]])
        assert (np.diff(key) >= 0).all()

    def test_descending(self, powerlaw_graph):
        g = degree_sorted_order(powerlaw_graph, descending=True)
        deg = powerlaw_graph.degrees
        key = np.maximum(deg[g.edges[:, 0]], deg[g.edges[:, 1]])
        assert (np.diff(key) <= 0).all()

    def test_preserves_edges(self, powerlaw_graph):
        assert _same_multiset(powerlaw_graph, degree_sorted_order(powerlaw_graph))


class TestBfsLike:
    def test_preserves_edges(self, community_graph):
        assert _same_multiset(community_graph, bfs_like_order(community_graph))

    def test_empty_graph(self):
        g = Graph([], n_vertices=0)
        assert bfs_like_order(g).n_edges == 0

    def test_locality_improves(self, community_graph):
        """BFS order should place same-community edges closer together."""
        shuffled = shuffled_copy(community_graph, seed=1)
        ordered = bfs_like_order(shuffled)
        comm_size = 24

        def mean_gap(graph):
            # Mean stream distance between consecutive edges of community 0.
            comm = graph.edges[:, 0] // comm_size
            positions = np.where(comm == 0)[0]
            return np.diff(positions).mean() if positions.size > 1 else 0.0

        assert mean_gap(ordered) <= mean_gap(shuffled)

    def test_covers_disconnected_components(self):
        g = Graph([(0, 1), (2, 3)], n_vertices=4)
        ordered = bfs_like_order(g)
        assert ordered.n_edges == 2
