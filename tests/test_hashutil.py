"""Unit tests for the deterministic hashing helpers."""

import numpy as np

from repro.partitioning.hashutil import hash_to_partition, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_seed_decorrelates(self):
        assert splitmix64(12345, seed=1) != splitmix64(12345, seed=2)

    def test_vectorized_matches_scalar(self):
        values = np.arange(100)
        vector = splitmix64(values)
        for i in range(100):
            assert vector[i] == splitmix64(i)

    def test_spreads_consecutive_inputs(self):
        hashed = splitmix64(np.arange(1000))
        # Consecutive integers should land in different high bits.
        assert np.unique(hashed >> np.uint64(32)).shape[0] > 900


class TestHashToPartition:
    def test_range(self):
        parts = hash_to_partition(np.arange(10_000), 7)
        assert parts.min() >= 0
        assert parts.max() < 7

    def test_scalar_returns_int(self):
        p = hash_to_partition(42, 5)
        assert isinstance(p, int)
        assert 0 <= p < 5

    def test_roughly_uniform(self):
        parts = hash_to_partition(np.arange(70_000), 7)
        counts = np.bincount(parts, minlength=7)
        assert counts.min() > 0.9 * 10_000
        assert counts.max() < 1.1 * 10_000

    def test_deterministic_across_calls(self):
        a = hash_to_partition(np.arange(100), 4, seed=3)
        b = hash_to_partition(np.arange(100), 4, seed=3)
        assert np.array_equal(a, b)
