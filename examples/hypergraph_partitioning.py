#!/usr/bin/env python3
"""Hypergraph partitioning with the 2PS-L generalization (future work).

The paper's conclusion announces a hypergraph generalization of 2PS-L as
future work.  This example partitions a planted-community hypergraph
(group relationships, e.g. authors-per-paper or items-per-basket) with
three algorithms and shows the same trade-off as on ordinary graphs:
stateless hashing is fast but poor, full stateful streaming (MinMax,
O(|H| * k)) is best but scales with k, and 2PS-L-H sits in between at
constant scoring work per hyperedge.

Run:  python examples/hypergraph_partitioning.py
"""

from repro.hypergraph import (
    HashHyperedges,
    MinMaxStreaming,
    TwoPhaseHypergraphPartitioner,
    planted_hypergraph,
)


def main() -> None:
    hypergraph = planted_hypergraph(
        n_communities=40, community_size=20, n_hyperedges=8000, seed=1
    )
    print(
        f"hypergraph: |V|={hypergraph.n_vertices:,} "
        f"|H|={hypergraph.n_hyperedges:,} pins={hypergraph.total_pins:,}"
    )
    for k in (8, 32, 128):
        print(f"\nk = {k}")
        print(f"  {'system':10s} {'RF':>7s} {'alpha':>7s} {'score evals/hyperedge':>22s}")
        for partitioner in (
            TwoPhaseHypergraphPartitioner(),
            MinMaxStreaming(),
            HashHyperedges(),
        ):
            result = partitioner.partition(hypergraph, k)
            per_he = result.cost.score_evaluations / hypergraph.n_hyperedges
            print(
                f"  {result.partitioner:10s} {result.replication_factor:7.3f} "
                f"{result.measured_alpha:7.3f} {per_he:22.2f}"
            )
    print(
        "\n2PS-L-H's scoring work stays <= 2 per hyperedge at every k — the "
        "linear-run-time property carried over to hypergraphs — while "
        "MinMax's grows with k like HDRF's does on graphs."
    )


if __name__ == "__main__":
    main()
