#!/usr/bin/env python3
"""Many-partition preprocessing for GNN-style training (high k).

The paper's motivation (Section I): emerging workloads such as GNN
training need the graph split across *many* workers, and stateful
streaming partitioners become unusable because their run-time grows
linearly with k — which is why systems like P3 fall back to hashing.
2PS-L removes that obstacle: its run-time is flat in k.

This example sweeps k over {16, 64, 256} on the Twitter stand-in and
reports, per partitioner, the machine-neutral partitioning cost and the
replication factor (which determines the feature-vector traffic per GNN
layer: every mirror must fetch its vertex features once per layer).

Run:  python examples/gnn_training_pipeline.py
"""

from repro import DBH, HDRF, PartitionedGraph, TwoPhasePartitioner, load_dataset

#: bytes per vertex feature vector (e.g. 256 floats), per GNN layer
FEATURE_BYTES = 1024
LAYERS = 3


def feature_traffic_mb(pgraph: PartitionedGraph) -> float:
    """Cross-worker feature bytes per training epoch (mirrors x layers)."""
    return pgraph.mirror_count * FEATURE_BYTES * LAYERS / 1e6


def main() -> None:
    graph = load_dataset("TW", scale=0.25)
    print(f"TW stand-in: |V|={graph.n_vertices:,} |E|={graph.n_edges:,}")
    print(
        f"\n{'k':>4s}  {'system':8s} {'RF':>6s} {'partition model_s':>18s} "
        f"{'feature traffic/epoch':>22s}"
    )
    for k in (16, 64, 256):
        for partitioner in (TwoPhasePartitioner(), HDRF(), DBH()):
            result = partitioner.partition(graph, k)
            pgraph = PartitionedGraph(
                graph.edges, result.assignments, k, graph.n_vertices
            )
            print(
                f"{k:4d}  {result.partitioner:8s} "
                f"{result.replication_factor:6.3f} "
                f"{result.model_seconds():18.4f} "
                f"{feature_traffic_mb(pgraph):18.1f} MB"
            )
        print()
    print(
        "2PS-L's partitioning cost is flat across k while HDRF's grows "
        "~16x from k=16 to k=256; and 2PS-L cuts the GNN feature traffic "
        "roughly in half versus hashing (DBH)."
    )


if __name__ == "__main__":
    main()
