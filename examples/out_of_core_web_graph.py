#!/usr/bin/env python3
"""Out-of-core partitioning of a web graph from (simulated) external storage.

Scenario from Section V-F of the paper: the graph lives on disk as a
binary edge list, memory is too small to cache it, and every streaming pass
re-reads the file.  We write the UK web-graph stand-in to a temp file and
partition it through a FileEdgeStream charged against simulated
page-cache / SSD / HDD devices, reporting the I/O penalty per device.

Run:  python examples/out_of_core_web_graph.py
"""

import os
import tempfile

from repro import TwoPhasePartitioner, load_dataset
from repro.graph.formats import write_binary_edge_list
from repro.storage import hdd_device, page_cache_device, ssd_device
from repro.streaming import FileEdgeStream


def main() -> None:
    graph = load_dataset("UK", scale=0.25)
    print(f"UK stand-in: |V|={graph.n_vertices:,} |E|={graph.n_edges:,}")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "uk.bin")
        nbytes = write_binary_edge_list(graph, path)
        print(f"wrote binary edge list: {nbytes / 1e6:.1f} MB -> {path}")

        results = {}
        for factory in (page_cache_device, ssd_device, hdd_device):
            device = factory()
            stream = FileEdgeStream(path, n_vertices=graph.n_vertices, device=device)
            result = TwoPhasePartitioner().partition(stream, k=32)
            # Total = machine-neutral compute + simulated device I/O (the
            # Table V accounting: Python wall-clock would drown the I/O).
            total = result.model_seconds() + stream.stats.simulated_read_seconds
            results[device.name] = (result, total, stream.stats.passes)

        print(f"\n{'device':12s} {'RF':>6s} {'passes':>6s} {'compute+I/O':>12s}")
        base = results["page-cache"][1]
        for name, (result, total, passes) in results.items():
            slow = f"(+{100 * (total / base - 1):.0f} %)" if name != "page-cache" else ""
            print(
                f"{name:12s} {result.replication_factor:6.3f} {passes:6d} "
                f"{total:11.4f}s {slow}"
            )

    print(
        "\nThe partitioning itself is identical on every device — only the "
        "simulated read time differs, exactly like the paper's Table V."
    )


if __name__ == "__main__":
    main()
