#!/usr/bin/env python3
"""Dynamic graphs: keep a partitioning fresh under edge churn.

The paper (Section VI) points out that 2PS-L can be made incremental for
dynamic graphs.  This example partitions the IT web stand-in once, then
streams 15 % edge churn through the IncrementalPartitioner (each update is
O(1) — at most two score evaluations), watching the replication factor
drift; finally it re-runs the batch partitioner to show what a periodic
refresh recovers.

Run:  python examples/dynamic_graph.py
"""

import numpy as np

from repro import TwoPhasePartitioner, load_dataset
from repro.core import IncrementalPartitioner
from repro.graph import Graph


def main() -> None:
    k = 16
    graph = load_dataset("IT", scale=0.25)
    print(f"IT stand-in: |V|={graph.n_vertices:,} |E|={graph.n_edges:,}")

    base = TwoPhasePartitioner(keep_state=True).partition(graph, k)
    print(f"batch 2PS-L RF = {base.replication_factor:.3f}")

    inc = IncrementalPartitioner.from_result(base)
    inc.attach_edges(graph.edges, base.assignments)

    rng = np.random.default_rng(42)
    total_updates = int(0.15 * graph.n_edges)
    checkpoint = max(1, total_updates // 5)
    inserted = []
    print(f"\nstreaming {total_updates:,} random insertions ...")
    for i in range(1, total_updates + 1):
        u, v = (int(x) for x in rng.integers(0, graph.n_vertices, 2))
        inc.insert(u, v)
        inserted.append((u, v))
        if i % checkpoint == 0:
            print(
                f"  after {i:7,d} updates: RF = {inc.replication_factor():.3f} "
                f"(staleness {inc.staleness:.3f})"
            )

    mutated = Graph(
        np.concatenate([graph.edges, np.asarray(inserted, dtype=np.int64)]),
        graph.n_vertices,
    )
    refreshed = TwoPhasePartitioner().partition(mutated, k)
    print(
        f"\nincremental RF after churn : {inc.replication_factor():.3f}\n"
        f"batch re-partition RF      : {refreshed.replication_factor:.3f}\n"
        f"gap (incremental / batch)  : "
        f"{inc.replication_factor() / refreshed.replication_factor:.3f}"
    )
    print(
        "\nEach update cost O(1); re-partitioning costs a full 4-pass "
        "run — monitor `staleness` and refresh when the gap matters."
    )


if __name__ == "__main__":
    main()
