#!/usr/bin/env python3
"""End-to-end: partition a social network, then run distributed PageRank.

The paper's Table IV scenario: the value of a partitioner is the *total*
of partitioning time plus the distributed-processing time its partitioning
quality enables.  We partition the Wikipedia stand-in with three systems,
run 50 PageRank supersteps on the simulated GraphX cluster, and show that
neither the fastest partitioner (DBH) nor the best-quality one wins
end-to-end — 2PS-L does.

Run:  python examples/distributed_pagerank.py
"""

from repro import (
    DBH,
    HDRF,
    PageRank,
    PartitionedGraph,
    PregelEngine,
    TwoPhasePartitioner,
    load_dataset,
)
from repro.graph.datasets import DATASETS
from repro.processing.cost import ClusterSpec


def main() -> None:
    k = 32
    graph = load_dataset("WI", scale=0.25)
    ratio = DATASETS["WI"].paper_edges / graph.n_edges
    print(
        f"WI stand-in: |V|={graph.n_vertices:,} |E|={graph.n_edges:,} "
        f"(paper graph is {ratio:.0f}x larger; times extrapolated)"
    )
    engine = PregelEngine(ClusterSpec.paper_cluster().scaled(ratio))

    print(f"\n{'system':8s} {'RF':>6s} {'partition':>10s} {'pagerank':>10s} {'total':>10s}")
    totals = {}
    for partitioner in (TwoPhasePartitioner(), HDRF(), DBH()):
        result = partitioner.partition(graph, k)
        pgraph = PartitionedGraph(graph.edges, result.assignments, k, graph.n_vertices)
        values, report = engine.run(pgraph, PageRank(), max_supersteps=50)
        part_s = result.model_seconds() * ratio
        total = part_s + report.total_seconds
        totals[result.partitioner] = total
        print(
            f"{result.partitioner:8s} {result.replication_factor:6.3f} "
            f"{part_s:9.1f}s {report.total_seconds:9.1f}s {total:9.1f}s"
        )
        # The PageRank values themselves are exact (the simulator only
        # models *time*); their mass always sums to 1.
        assert abs(values.sum() - 1.0) < 1e-6

    winner = min(totals, key=totals.get)
    print(f"\nLowest end-to-end time: {winner}")
    print(
        "DBH partitions fastest but its high replication factor makes "
        "PageRank slower; HDRF partitions well but slowly. 2PS-L balances "
        "both — the paper's Table IV conclusion."
    )


if __name__ == "__main__":
    main()
