#!/usr/bin/env python3
"""Quickstart: partition a graph with 2PS-L and inspect the result.

Generates the Orkut stand-in, partitions it into 32 parts with the 2PS-L
two-phase streaming partitioner, and prints the metrics the paper reports:
replication factor, balance, run-time, and the phase breakdown.

Run:  python examples/quickstart.py
"""

from repro import TwoPhasePartitioner, load_dataset
from repro.baselines import DBH, HDRF


def main() -> None:
    print("Loading the OK (com-orkut) stand-in ...")
    graph = load_dataset("OK", scale=0.25)
    print(f"  |V| = {graph.n_vertices:,}   |E| = {graph.n_edges:,}")

    k = 32
    print(f"\nPartitioning into k={k} parts with 2PS-L ...")
    result = TwoPhasePartitioner().partition(graph, k, alpha=1.05)

    print(f"  replication factor : {result.replication_factor:.3f}")
    print(f"  measured alpha     : {result.measured_alpha:.3f}")
    print(f"  wall-clock seconds : {result.wall_seconds:.3f}")
    print(f"  state bytes        : {result.state_bytes:,}")
    print(f"  clusters found     : {result.extras['n_clusters']}")
    pre = result.extras["prepartitioned_edges"]
    print(
        f"  pre-partitioned    : {pre:,} edges "
        f"({100 * pre / graph.n_edges:.1f} % of the stream)"
    )
    print("  phase breakdown    :")
    for phase, seconds in result.timer.totals.items():
        print(f"    {phase:13s} {seconds:.4f} s")

    print("\nComparing against the paper's main streaming baselines ...")
    for partitioner in (HDRF(), DBH()):
        other = partitioner.partition(graph, k)
        print(
            f"  {other.partitioner:6s} RF={other.replication_factor:6.3f} "
            f"alpha={other.measured_alpha:5.3f} wall={other.wall_seconds:6.3f}s"
        )
    print(
        "\n2PS-L matches or beats HDRF's quality at a fraction of the "
        "run-time, and only hashing (DBH) is faster — the paper's headline."
    )


if __name__ == "__main__":
    main()
