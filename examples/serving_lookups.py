#!/usr/bin/env python3
"""Serving a partitioning online: store export, mmap reopen, lookups.

A partitioning is only useful if the execution engine can *ask* it where
things live.  This example closes that loop: partition a social-network
stand-in with 2PS-L, persist the run as a :class:`PartitionStore`
(flat binary arrays + checksummed manifest), reopen it memory-mapped —
O(1) in graph size, zero-copy — and drive a :class:`LookupService`
through the three online questions:

1. ``vertex_partitions(ids, hint=...)`` — route each vertex to a serving
   partition, preferring the caller's own partition when a replica is
   co-located there, else the least-loaded replica;
2. ``edge_partition(u, v)`` — which partition owns an edge;
3. ``replica_set(v)`` — the full replica list.

It also shows the LRU hot-vertex cache paying off on a skewed workload.

Run:  python examples/serving_lookups.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import TwoPhasePartitioner
from repro.graph.datasets import load_dataset
from repro.serving import LookupService, PartitionStore

K = 8


def main() -> None:
    graph = load_dataset("OK", scale=0.05, seed=7)
    result = TwoPhasePartitioner(keep_state=True).partition(graph, K)
    print(
        f"partitioned {graph.n_edges} edges into k={K} "
        f"(rf={result.replication_factor:.3f})"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store"

        # -- offline: persist once ------------------------------------
        PartitionStore.write(path, result, graph.edges)

        # -- online: mmap-reopen and serve ----------------------------
        store = PartitionStore.open(path)   # O(1), zero-copy
        store.verify()                      # optional CRC-32 sweep
        svc = LookupService(store, cache_size=1024)
        print(f"opened {store} ({store.nbytes()} bytes on disk)")

        # Batched routing: 10k vertex lookups in one vectorized call.
        rng = np.random.default_rng(7)
        ids = rng.integers(0, graph.n_vertices, size=10_000)
        routed = svc.vertex_partitions(ids)
        print(
            f"routed {ids.size} vertices; partition share of p0: "
            f"{np.mean(routed == 0):.2%}"
        )

        # Partition-aware routing: a worker on partition 3 asks with a
        # hint and keeps every co-located read local.
        hinted = svc.vertex_partitions(ids, hint=3)
        local = np.mean(hinted == 3)
        print(f"with hint=3, {local:.2%} of reads stay local")

        # Edge ownership straight off the sorted mapped key array.
        u, v = (int(x) for x in graph.edges[0])
        print(f"edge ({u}, {v}) lives on partition {svc.edge_partition(u, v)}")
        print(f"vertex {u} replicas: {svc.replica_set(u).tolist()}")

        # The LRU cache on a skewed (hot-set) scalar workload.
        hot = rng.integers(0, 64, size=2_000)  # 64 hot vertices
        for vid in hot.tolist():
            svc.vertex_partitions(vid)
        info = svc.cache_info()
        print(
            f"scalar cache after hot-set replay: {info['hits']} hits / "
            f"{info['misses']} misses"
        )


if __name__ == "__main__":
    main()
