#!/usr/bin/env python3
"""Extending the library: write and evaluate your own edge partitioner.

Implements "Cluster-Hash" — a minimal third-party partitioner that reuses
the library's Phase-1 clustering but then *hashes clusters* to partitions
(no scoring at all).  It shows the extension surface a downstream user
works with: subclass EdgePartitioner, implement _run over the stream
protocol, fill in a PartitionResult, and the whole harness (validation,
metrics, experiments) works with it unchanged.

Run:  python examples/custom_partitioner.py
"""

import numpy as np

from repro import EdgePartitioner, PartitionResult, PartitionState, load_dataset
from repro.baselines import DBH
from repro.core import TwoPhasePartitioner
from repro.core.clustering import StreamingClustering, default_volume_cap
from repro.graph.degrees import compute_degrees_from_stream
from repro.metrics import validate_partition
from repro.metrics.runtime import CostCounter, PhaseTimer
from repro.partitioning.hashutil import hash_to_partition


class ClusterHash(EdgePartitioner):
    """Cluster once, then hash each cluster to a partition.

    Quality sits between pure hashing (no structure) and 2PS-L (structure
    + scoring): intra-cluster edges co-locate, but there is no balance
    control beyond the hard cap fallback and no degree awareness.
    """

    name = "ClusterHash"

    def _run(self, stream, k: int, alpha: float) -> PartitionResult:
        timer = PhaseTimer()
        cost = CostCounter()
        m = stream.n_edges
        with timer.phase("degree"):
            degrees = compute_degrees_from_stream(stream)
            cost.edges_streamed += m
        n = max(self._resolve_n_vertices(stream, degrees), len(degrees))
        with timer.phase("clustering"):
            clustering = StreamingClustering(
                volume_cap=default_volume_cap(m, k)
            ).run(stream, degrees=degrees, cost=cost)
        state = PartitionState(n, k, m, alpha)
        assignments = np.empty(m, dtype=np.int32)
        c2p = hash_to_partition(np.arange(clustering.n_clusters), k)
        v2c = clustering.v2c
        with timer.phase("assign"):
            sizes = [0] * k
            capacity = state.capacity
            idx = 0
            for chunk in stream.chunks():
                for u, v in chunk.tolist():
                    p = int(c2p[v2c[u]])
                    if sizes[p] >= capacity:
                        p = min(range(k), key=sizes.__getitem__)
                    sizes[p] += 1
                    state.replicas[u, p] = True
                    state.replicas[v, p] = True
                    assignments[idx] = p
                    idx += 1
            cost.edges_streamed += m
            cost.hash_evaluations += m
        state.sizes[:] = sizes
        return PartitionResult(
            partitioner=self.name,
            k=k,
            alpha=alpha,
            n_vertices=n,
            n_edges=m,
            assignments=assignments,
            state=state,
            timer=timer,
            cost=cost,
        )


def main() -> None:
    graph = load_dataset("IT", scale=0.25)
    print(f"IT stand-in: |V|={graph.n_vertices:,} |E|={graph.n_edges:,}")
    print(f"\n{'system':12s} {'RF':>7s} {'alpha':>7s} {'wall':>8s}")
    for partitioner in (ClusterHash(), DBH(), TwoPhasePartitioner()):
        result = partitioner.partition(graph, 32)
        validate_partition(graph.edges, result.assignments, 32)
        print(
            f"{result.partitioner:12s} {result.replication_factor:7.3f} "
            f"{result.measured_alpha:7.3f} {result.wall_seconds:7.3f}s"
        )
    print(
        "\nClusterHash already beats naive hashing on clusterable graphs, "
        "but 2PS-L's volume-balanced mapping plus two-candidate scoring is "
        "what closes the rest of the gap."
    )


if __name__ == "__main__":
    main()
